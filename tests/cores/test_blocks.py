"""Unit tests for the basic-block predecoded interpreter.

Covers predecode boundaries, the block cache (LRU bounds, eviction,
slow-pc memoisation), the interrupt horizon, and per-fragment parity
between block dispatch and the exact per-instruction path on every
core. The broader suite-level equivalence lives in
``test_blocks_differential.py``.
"""

import pytest

from repro.cores import CORE_CLASSES
from repro.cores.blocks import MAX_BLOCK_INSTRS, BlockEngine
from repro.cores.system import System
from repro.isa.assembler import assemble
from repro.rtosunit.config import parse_config
from tests.cores.helpers import HALT_TAIL


def _run(source, core="cv32e40p", config="vanilla", blocks=True,
         max_cycles=200_000, capacity=None, tick_period=1 << 30):
    system = System(CORE_CLASSES[core], parse_config(config),
                    tick_period=tick_period)
    cpu = system.core
    if blocks:
        cpu.block_engine = BlockEngine(cpu, capacity=capacity)
    else:
        cpu.block_engine = None
    system.load(assemble(source + HALT_TAIL, origin=0))
    system.run(max_cycles=max_cycles)
    return system


def _state(system):
    core = system.core
    return (core.cycle, core.stats.instret, list(core.regs),
            core.stats.as_dict() if hasattr(core.stats, "as_dict")
            else vars(core.stats).copy())


FRAGMENTS = {
    "alu_chain": """
    li   s0, 100
loop:
    addi s1, s1, 3
    xori s2, s1, 0x55
    slt  s3, s2, s1
    addi s0, s0, -1
    bnez s0, loop
""",
    "memory_mix": """
    li   s0, 20
    la   s1, buf
loop:
    sw   s0, 0(s1)
    lw   s2, 0(s1)
    sh   s2, 4(s1)
    lhu  s3, 4(s1)
    sb   s3, 8(s1)
    lb   s4, 8(s1)
    addi s0, s0, -1
    bnez s0, loop
    j    out
buf: .word 0
    .word 0
    .word 0
out:
""",
    "muldiv": """
    li   s0, 12
    li   s1, 40
loop:
    mul  s2, s0, s1
    div  s3, s2, s0
    rem  s4, s2, s1
    addi s0, s0, -1
    bnez s0, loop
""",
    "call_tree": """
    li   s0, 15
loop:
    jal  ra, leaf
    addi s0, s0, -1
    bnez s0, loop
    j    out
leaf:
    addi s5, s5, 7
    lui  s6, 0x12
    auipc s7, 1
    jr   ra
out:
""",
}


class TestFragmentParity:
    @pytest.mark.parametrize("core", sorted(CORE_CLASSES))
    @pytest.mark.parametrize("name", sorted(FRAGMENTS))
    def test_blocks_match_exact_path(self, core, name):
        on = _run(FRAGMENTS[name], core=core, blocks=True)
        off = _run(FRAGMENTS[name], core=core, blocks=False)
        assert _state(on) == _state(off)
        assert on.core.perf_counters()["fast_instret"] > 0

    @pytest.mark.parametrize("core", sorted(CORE_CLASSES))
    def test_trap_roundtrip_parity(self, core):
        source = """
    la   t0, handler
    csrw mtvec, t0
    li   t0, 0x888
    csrw mie, t0
    csrsi mstatus, 8
    li   s0, 200
loop:
    addi s1, s1, 1
    addi s0, s0, -1
    bnez s0, loop
    j    out
handler:
    addi s2, s2, 1
    li   t1, 0x200BFF8
    lw   t2, 0(t1)
    addi t2, t2, 300
    li   t3, 0x2004000
    sw   t2, 0(t3)
    mret
out:
"""
        on = _run(source, core=core, blocks=True, tick_period=300)
        off = _run(source, core=core, blocks=False, tick_period=300)
        assert _state(on) == _state(off)
        assert on.core.stats.traps == off.core.stats.traps
        assert on.core.stats.traps > 0


class TestPredecodeBoundaries:
    def test_block_ends_at_branch(self):
        system = _run("""
    addi s0, s0, 1
    addi s1, s1, 2
    beqz zero, next
    addi s2, s2, 99
next:
    addi s3, s3, 3
""")
        engine = system.core.block_engine
        block = engine.cache[0]
        # 2 ALU ops + the (included) branch terminator.
        assert len(block) == 3
        assert system.core.regs[18] == 0  # branch skipped s2

    def test_csr_ops_ride_inside_blocks(self):
        system = _run("""
    addi s0, s0, 1
    csrr s1, mcycle
    addi s2, s2, 1
""")
        engine = system.core.block_engine
        # The CSR read predecodes into a resident record: the block
        # runs straight through it (covering the csrr word at 0x4).
        assert len(engine.cache[0]) >= 3
        assert 4 in engine.cache[0].addrs

    def test_horizon_csr_writes_resync_inline_on_inorder_cores(self):
        source = """
    addi s0, s0, 1
    csrrw s1, mscratch, s0
    csrrci s2, mstatus, 8
    addi s3, s3, 1
"""
        system = _run(source)
        engine = system.core.block_engine
        # mscratch traffic is resident; the mstatus write carries the
        # terminal flag but the in-order executor resyncs the horizon in
        # place, so the block runs straight through it.
        block = engine.cache[0]
        assert len(block) > 3
        assert block.records[2][4]  # csrrci mstatus: horizon-writing
        assert system.core.csr.read(0x340) == system.core.regs[8]

    def test_horizon_csr_writes_end_the_block_on_arch_cores(self):
        # The architectural executor's batched-timing admission bound
        # cannot span a horizon write, so there it still ends the block.
        system = _run("""
    addi s0, s0, 1
    csrrw s1, mscratch, s0
    csrrci s2, mstatus, 8
    addi s3, s3, 1
""", core="naxriscv")
        engine = system.core.block_engine
        assert len(engine.cache[0]) == 3
        assert system.core.csr.read(0x340) == system.core.regs[8]

    def test_max_block_length_bounds_straight_line_runs(self):
        body = "\n".join(f"    addi s0, s0, {i % 7}"
                         for i in range(MAX_BLOCK_INSTRS + 40))
        system = _run(body)
        engine = system.core.block_engine
        assert len(engine.cache[0]) == MAX_BLOCK_INSTRS

    def test_blocks_shared_suffix_registered_per_word(self):
        # Jumping into the middle of an existing block predecodes a
        # second block; both register in the word->blocks map.
        system = _run("""
    li   s0, 2
loop:
    addi s1, s1, 1
    addi s2, s2, 1
    addi s3, s3, 1
    addi s0, s0, -1
    j    mid
mid:
    addi s2, s2, 1
    bnez s0, loop
""")
        engine = system.core.block_engine
        shared = [a for a, pcs in engine.addr_map.items() if len(pcs) > 1]
        assert shared, "overlapping blocks should share word registrations"


class TestBlockCache:
    def test_capacity_bounds_and_evictions(self):
        # Many distinct single-block loop bodies against a tiny cache.
        chunks = []
        for i in range(8):
            chunks.append(f"""
    jal  ra, f{i}
""")
        funcs = []
        for i in range(8):
            funcs.append(f"""
f{i}:
    addi s0, s0, {i}
    jr   ra
""")
        src = "".join(chunks) + "    j out\n" + "".join(funcs) + "out:\n"
        system = _run(src, capacity=4)
        engine = system.core.block_engine
        assert len(engine.cache) <= 4
        assert engine.cache.evictions > 0
        # Evicted blocks must be unregistered from the address map.
        live = set(engine.cache)
        for addr, pcs in engine.addr_map.items():
            assert pcs <= live

    def test_hit_rate_reported(self):
        system = _run(FRAGMENTS["alu_chain"])
        counters = system.core.perf_counters()
        assert counters["block_hits"] > counters["block_misses"]
        assert 0.5 < counters["block_hit_rate"] <= 1.0
        assert counters["blocks_cached"] == len(system.core.block_engine.cache)

    def test_slow_pc_memoised_not_rebuilt(self):
        # ``mret`` stays on the exact path (privilege transition): its
        # pc is attempted once, then memoised as slow.
        system = _run("""
    li   s0, 50
loop:
    addi s0, s0, -1
    beqz s0, out
    la   t0, loop
    csrw mepc, t0
    mret
out:
""")
        engine = system.core.block_engine
        assert engine.slow_pcs
        # Builds are not retried 50 times: misses stay far below the
        # loop trip count.
        assert engine.misses < 10


class TestHorizon:
    def test_timer_interrupt_taken_at_identical_cycle(self):
        source = """
    la   t0, handler
    csrw mtvec, t0
    li   t0, 0x888
    csrw mie, t0
    csrsi mstatus, 8
    li   s0, 4000
loop:
    addi s1, s1, 1
    addi s0, s0, -1
    bnez s0, loop
    j    out
handler:
    addi s2, s2, 1
    li   t1, 0x200BFF8
    lw   t2, 0(t1)
    addi t2, t2, 777
    li   t3, 0x2004000
    sw   t2, 0(t3)
    mret
out:
"""
        on = _run(source, blocks=True, tick_period=777)
        off = _run(source, blocks=False, tick_period=777)
        assert on.core.stats.traps == off.core.stats.traps > 1
        assert [tuple(vars(s).values()) for s in on.switches] == \
               [tuple(vars(s).values()) for s in off.switches]

    def test_disabled_interrupts_run_free(self):
        # mstatus.MIE clear: the horizon is infinite, blocks run long.
        system = _run(FRAGMENTS["alu_chain"], tick_period=100)
        counters = system.core.perf_counters()
        assert counters["slow_ratio"] < 0.3


class TestRunModeGates:
    def test_step_hook_forces_exact_path(self):
        system = System(CORE_CLASSES["cv32e40p"], parse_config("vanilla"),
                        tick_period=1 << 30)
        seen = []
        system.core.step_hook = lambda core: seen.append(core.pc)
        system.load(assemble(FRAGMENTS["alu_chain"] + HALT_TAIL, origin=0))
        system.run(max_cycles=200_000)
        counters = system.core.perf_counters()
        assert counters["fast_instret"] == 0
        assert len(seen) == system.core.stats.instret

    def test_engine_disabled_matches_env_off(self):
        on = _run(FRAGMENTS["memory_mix"], blocks=True)
        off = _run(FRAGMENTS["memory_mix"], blocks=False)
        assert off.core.perf_counters()["fast_instret"] == 0
        assert _state(on) == _state(off)
