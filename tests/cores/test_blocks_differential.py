"""Suite-level differential: block dispatch vs the exact path.

Every RTOSBench workload runs on every core model, with and without
block dispatch, on both the software baseline and a hardware-assisted
configuration. The two modes must agree on everything observable:
cycle count, retired instructions, the full core stats, every context
switch record and the final register state. This is the acceptance
test for the exactness contract in ``repro.cores.blocks``.
"""

import dataclasses

import pytest

from repro.cores import CORE_NAMES
from repro.cores.blocks import BlockEngine
from repro.kernel.builder import KernelBuilder
from repro.rtosunit.config import parse_config
from repro.workloads.suite import RTOSBENCH_WORKLOADS

ITERATIONS = 3
CONFIGS = ("vanilla", "SLT")


def _observable(core, system):
    return {
        "cycle": core.cycle,
        "instret": core.stats.instret,
        "stats": vars(core.stats).copy(),
        "regs": [list(bank) for bank in core.banks],
        "pc": core.pc,
        "switches": [dataclasses.asdict(s) for s in system.switches],
    }


def _run(core_name, config_name, factory, blocks):
    config = parse_config(config_name)
    workload = factory(iterations=ITERATIONS)
    builder = KernelBuilder(config=config, objects=workload.objects,
                            tick_period=workload.tick_period)
    system = builder.build(core_name,
                          external_events=workload.external_events)
    cpu = system.core
    if blocks:
        cpu.block_engine = BlockEngine(cpu)
    else:
        cpu.block_engine = None
    system.run(workload.max_cycles)
    return _observable(cpu, system), cpu.perf_counters()


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("core_name", sorted(CORE_NAMES))
def test_suite_identical_with_and_without_blocks(core_name, config_name):
    for factory in RTOSBENCH_WORKLOADS:
        on, on_counters = _run(core_name, config_name, factory, blocks=True)
        off, off_counters = _run(core_name, config_name, factory,
                                 blocks=False)
        name = factory(iterations=ITERATIONS).name
        assert on == off, (
            f"{name} on {core_name}/{config_name}: block dispatch changed "
            f"observable state")
        # The comparison must actually compare something: the fast path
        # retired instructions, the exact path retired none that way.
        assert on_counters["fast_instret"] > 0, (
            f"{name} on {core_name}/{config_name}: blocks never dispatched")
        assert off_counters["fast_instret"] == 0
