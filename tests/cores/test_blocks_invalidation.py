"""Block-cache invalidation: self-modifying code, faults, bank switches.

The block cache caches *decoded* instructions, so anything that mutates
instruction memory — a self-modifying store or an injected bit flip —
must drop the affected blocks, and re-predecoded execution must match
the exact per-instruction path bit-for-bit.
"""

import dataclasses

import pytest

from repro.cores import CORE_CLASSES
from repro.cores.blocks import BlockEngine
from repro.cores.system import System
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultSpec
from repro.isa.assembler import assemble
from repro.kernel.builder import KernelBuilder
from repro.rtosunit.config import parse_config
from repro.workloads.suite import workload_by_name
from tests.cores.helpers import HALT_TAIL


def _encoding(line: str) -> int:
    """Word encoding of a single assembly instruction."""
    return assemble("    " + line.strip(), origin=0).words[0]


def _run(source, core="cv32e40p", config="vanilla", blocks=True,
         max_cycles=200_000):
    system = System(CORE_CLASSES[core], parse_config(config),
                    tick_period=1 << 30)
    cpu = system.core
    if blocks:
        cpu.block_engine = BlockEngine(cpu)
    else:
        cpu.block_engine = None
    system.load(assemble(source + HALT_TAIL, origin=0))
    system.run(max_cycles=max_cycles)
    return system


def _state(system):
    core = system.core
    return (core.cycle, core.stats.instret, list(core.regs))


class TestSelfModifyingStores:
    def test_patched_loop_body_executed_with_both_encodings(self):
        """A loop patches its own body: iteration 1 runs the original
        instruction, later iterations the patched one. Both dispatch
        modes must agree, and block mode must record invalidations."""
        patch = _encoding("addi s1, s1, 16")
        source = f"""
    li   s0, 4
    la   t0, patchme
    la   t1, patchword
    lw   t2, 0(t1)
    j    loop
patchword: .word {patch:#010x}
loop:
patchme:
    addi s1, s1, 1
    sw   t2, 0(t0)
    addi s0, s0, -1
    bnez s0, loop
"""
        on = _run(source, blocks=True)
        off = _run(source, blocks=False)
        assert _state(on) == _state(off)
        # 1 original + 3 patched iterations.
        assert on.core.regs[9] == 1 + 3 * 16
        assert on.core.block_engine.invalidations >= 1

    def test_store_patches_upcoming_instruction_in_same_block(self):
        """The store targets the instruction straight after itself, so
        the stale predecoded record must never execute."""
        patch = _encoding("addi s1, s1, 100")
        source = f"""
    la   t0, target
    la   t1, patchword
    lw   t2, 0(t1)
    j    go
patchword: .word {patch:#010x}
go:
    sw   t2, 0(t0)
target:
    addi s1, s1, 1
"""
        on = _run(source, blocks=True)
        off = _run(source, blocks=False)
        assert _state(on) == _state(off)
        assert on.core.regs[9] == 100

    @pytest.mark.parametrize("core", sorted(CORE_CLASSES))
    def test_parity_across_cores(self, core):
        patch = _encoding("addi s3, s3, 5")
        source = f"""
    li   s0, 3
    la   t0, spot
    la   t1, patchword
    lw   t2, 0(t1)
    j    loop
patchword: .word {patch:#010x}
loop:
    sw   t2, 0(t0)
spot:
    addi s3, s3, 1
    addi s0, s0, -1
    bnez s0, loop
"""
        on = _run(source, core=core, blocks=True)
        off = _run(source, core=core, blocks=False)
        assert _state(on) == _state(off)
        assert on.core.regs[19] == 5 + 5 + 5


class TestInvalidateCode:
    def _ran_system(self):
        return _run("""
    li   s0, 30
loop:
    addi s1, s1, 1
    addi s0, s0, -1
    bnez s0, loop
""")

    def test_invalidate_drops_block_and_decode_entry(self):
        system = self._ran_system()
        core = system.core
        engine = core.block_engine
        word = next(iter(engine.addr_map))
        assert word in core._decode_cache
        core.invalidate_code(word)
        assert word not in engine.addr_map
        assert word not in core._decode_cache
        assert all(word not in b.addrs for b in engine.cache.values())

    def test_fault_mode_keeps_decode_cache_stale(self):
        """``decode_cache=False`` (fault-campaign semantics): the block
        side is dropped so it stays coherent with the decode cache, but
        the decode entry itself survives — blocks rebuild through it."""
        system = self._ran_system()
        core = system.core
        engine = core.block_engine
        word = next(iter(engine.addr_map))
        core.invalidate_code(word, decode_cache=False)
        assert word not in engine.addr_map
        assert word in core._decode_cache

    def test_injected_mem_flip_drops_covering_blocks(self):
        system = self._ran_system()
        core = system.core
        engine = core.block_engine
        word = next(iter(engine.addr_map))
        before = core.mem.read_word_raw(word)
        injector = FaultInjector(
            system, [FaultSpec(kind="mem_flip", cycle=0, target=word, bit=3)])
        injector.on_step(core)
        assert injector.done
        assert core.mem.read_word_raw(word) == before ^ 8
        assert word not in engine.addr_map
        # Campaign contract: the decode cache is deliberately left alone.
        assert word in core._decode_cache


class TestSuperblockInvalidation:
    """Promoted superblocks obey the same lockstep invalidation contract
    as plain blocks: any write into a covered range — raw poke, fault
    flip or self-modifying store — must drop every chained trace."""

    def _hot_system(self):
        """Run a loop long enough to promote its back-edge superblock.

        The mid-loop branch splits the body into two blocks — a pure
        self-loop never promotes (the chain would loop straight back to
        its own entry), a two-block trace does.
        """
        system = _run("""
    li   s0, 60
loop:
    addi s1, s1, 1
    bnez s1, mid
mid:
    addi s0, s0, -1
    bnez s0, loop
""")
        engine = system.core.block_engine
        assert engine.superblocks > 0
        supers = [b for b in engine.cache.values() if b.segs is not None]
        assert supers
        return system, supers[0]

    def test_raw_write_drops_covering_superblock(self):
        system, sb = self._hot_system()
        engine = system.core.block_engine
        # Dirty the *last* covered word so the whole chain must go, not
        # just the head segment.
        word = sb.addrs[-1]
        system.memory.write_word_raw(word, _encoding("nop"))
        assert all(word not in b.addrs for b in engine.cache.values())
        assert sb.entry not in engine.cache

    def test_fault_flip_drops_covering_superblock(self):
        system, sb = self._hot_system()
        engine = system.core.block_engine
        word = sb.addrs[-1]
        injector = FaultInjector(
            system, [FaultSpec(kind="mem_flip", cycle=0, target=word, bit=3)])
        injector.on_step(system.core)
        assert injector.done
        assert all(word not in b.addrs for b in engine.cache.values())
        assert sb.entry not in engine.cache

    def test_smc_after_promotion_stays_exact(self):
        """A loop hot enough to be promoted patches its own body on a
        second pass: the stale superblock must never replay the old
        encoding, and both dispatch modes must agree bit-for-bit."""
        patch = _encoding("addi s1, s1, 50")
        source = f"""
    li   s0, 24
    j    loop
patchword: .word {patch:#010x}
loop:
body:
    addi s1, s1, 1
    bnez s1, mid
mid:
    addi s0, s0, -1
    bnez s0, loop
    bnez s2, done
    li   s2, 1
    la   t0, body
    la   t1, patchword
    lw   t2, 0(t1)
    sw   t2, 0(t0)
    li   s0, 8
    j    loop
done:
"""
        on = _run(source, blocks=True)
        off = _run(source, blocks=False)
        assert _state(on) == _state(off)
        # 24 original + 8 patched iterations.
        assert on.core.regs[9] == 24 + 8 * 50
        engine = on.core.block_engine
        assert engine.superblocks > 0
        assert engine.invalidations >= 1


class TestBankSwitchBoundaries:
    """Hardware context switches (SWITCH_RF / trap / mret) are block
    boundaries by construction; the full RTOS workloads crossing them
    must be identical either way on the hardware-assisted configs."""

    @pytest.mark.parametrize("config_name", ["S", "SLT", "SDLOT"])
    def test_workload_parity_on_hw_configs(self, config_name):
        results = {}
        for blocks in (False, True):
            config = parse_config(config_name)
            workload = workload_by_name("yield_pingpong", iterations=6)
            builder = KernelBuilder(config=config, objects=workload.objects,
                                    tick_period=workload.tick_period)
            system = builder.build("cv32e40p",
                                   external_events=workload.external_events)
            cpu = system.core
            if blocks:
                cpu.block_engine = BlockEngine(cpu)
            else:
                cpu.block_engine = None
            system.run(workload.max_cycles)
            results[blocks] = (
                cpu.cycle, cpu.stats.instret, list(cpu.regs),
                cpu.stats.custom_ops, cpu.stats.traps, cpu.stats.mrets,
                [dataclasses.asdict(s) for s in system.switches],
            )
        assert results[True] == results[False]
        # The run must actually have crossed hardware boundaries.
        assert results[True][3] > 0 or results[True][4] > 0
