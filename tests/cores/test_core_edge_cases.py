"""Core-model edge cases and error paths."""

import pytest

from repro.cores import CORE_CLASSES, CV32E40P
from repro.cores.system import System
from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.rtosunit.config import parse_config
from tests.cores.helpers import run_fragment


class TestRunLoop:
    def test_cycle_limit_reports_pc(self):
        system = System(CV32E40P, parse_config("vanilla"))
        system.load(assemble("spin:\n    j spin\n"))
        with pytest.raises(SimulationError, match="cycle limit"):
            system.run(max_cycles=1000)

    def test_ecall_rejected_with_location(self):
        system = System(CV32E40P, parse_config("vanilla"))
        system.load(assemble("    ecall\n"))
        with pytest.raises(SimulationError, match="ecall"):
            system.run(max_cycles=1000)

    def test_wfi_without_clint_sources_wakes_on_timer(self):
        # wfi with only the (distant) timer skips straight to it.
        system = run_fragment("""
    li   t0, 0x888
    csrw mie, t0
    wfi
""", tick_period=500, max_cycles=10_000)
        assert system.core.cycle >= 500

    def test_custom_instruction_without_unit_rejected(self):
        system = System(CV32E40P, parse_config("vanilla"))
        system.load(assemble("    get_hw_sched a0\n"))
        with pytest.raises(SimulationError, match="RTOSUnit"):
            system.run(max_cycles=1000)


class TestDecodeCache:
    def test_repeated_execution_uses_cache(self):
        system = run_fragment("""
    li   s0, 50
loop:
    addi s0, s0, -1
    bnez s0, loop
""")
        # The loop body decodes once; the cache holds far fewer entries
        # than the executed instruction count.
        assert len(system.core._decode_cache) < 20
        assert system.core.stats.instret > 100


class TestWriteToDataInCodeRegion:
    def test_inline_data_is_plain_memory(self):
        """Data words interleaved with code behave as ordinary RAM."""
        system = run_fragment("""
    la   t0, value
    lw   a0, 0(t0)
    addi a0, a0, 1
    sw   a0, 0(t0)
    lw   a1, 0(t0)
    j    done
value: .word 41
done:
""")
        assert system.core.regs[11] == 42


class TestCrossCoreConsistency:
    @pytest.mark.parametrize("core", sorted(CORE_CLASSES))
    def test_trap_roundtrip_preserves_state(self, core):
        source = """
    la   t0, handler
    csrw mtvec, t0
    li   t0, 0x888
    csrw mie, t0
    li   s0, 0x1234
    li   s1, 0x5678
    csrsi mstatus, 8
    li   t0, 0x2000000
    li   t1, 1
    sw   t1, 0(t0)
    add  a0, s0, s1
    j    end
handler:
    mret
end:
"""
        system = run_fragment(source, core=core, max_cycles=50_000)
        assert system.core.regs[10] == 0x1234 + 0x5678
        assert system.core.stats.traps == 1

    @pytest.mark.parametrize("core", sorted(CORE_CLASSES))
    def test_timing_is_positive_and_ordered(self, core):
        short = run_fragment("nop\n" * 5, core=core).core.cycle
        long = run_fragment("nop\n" * 200, core=core).core.cycle
        assert 0 < short < long
