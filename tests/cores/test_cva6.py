"""CVA6-specific behaviour (§5.2): WT cache, bus arbitration, uncaching."""

from repro.cores import CVA6, build_system
from repro.rtosunit.config import parse_config
from tests.cores.helpers import run_fragment


class TestWriteThrough:
    def test_stores_always_reach_the_bus(self):
        system = run_fragment(
            "li a0, 0x1000\n" + "sw a0, 0(a0)\n" * 6, core="cva6")
        assert system.timeline.core_cycles >= 6

    def test_loads_hit_without_bus_traffic(self):
        warm = """
    li   a0, 0x1000
    lw   a1, 0(a0)
"""
        system = run_fragment(warm + "    lw a2, 0(a0)\n" * 8, core="cva6")
        # One refill (line-sized) plus nothing for the hits.
        refill = system.core.params.cache_line_words
        assert system.timeline.core_cycles <= refill + 4


class TestUncachedContextRegion:
    def test_region_not_cached(self):
        """The RTOSUnit writes the region at the bus level, below the
        write-through cache — the core must not cache it (§5.2)."""
        system = build_system("cva6", parse_config("SLT"))
        region = system.layout.context_region
        core = system.core
        assert core._uncached(region.base)
        assert core._uncached(region.end - 4)
        assert not core._uncached(region.base - 4)

    def test_vanilla_has_no_uncached_ranges(self):
        system = build_system("cva6", parse_config("vanilla"))
        assert system.core.uncached_ranges == []

    def test_uncached_loads_mark_bus_busy(self):
        system = build_system("cva6", parse_config("SLT"))
        core = system.core
        region = system.layout.context_region
        before = system.timeline.core_cycles
        core._mem_time(region.base, is_store=False, issue=10)
        assert system.timeline.core_cycles == before + 1


class TestScoreboardModel:
    def test_csr_cost_above_alu(self):
        assert CVA6.PARAMS.csr_cycles > 1

    def test_mispredict_penalty_configured(self):
        assert CVA6.PARAMS.has_branch_predictor
        assert CVA6.PARAMS.branch_mispredict_penalty >= 4

    def test_alternating_branch_pays_penalties(self):
        src = """
    li   s0, 30
    li   s1, 0
loop:
    andi t0, s0, 1
    beqz t0, even
    addi s1, s1, 1
even:
    addi s0, s0, -1
    bnez s0, loop
"""
        system = run_fragment(src, core="cva6")
        assert system.core.stats.mispredicts > 3
