"""Differential testing: the executor vs an independent reference.

Random straight-line instruction sequences run both on the core model
and on a deliberately different, minimal Python interpreter written in
this test; the architectural results must agree bit-for-bit. This
catches semantics bugs a hand-picked example suite would miss.
"""

from hypothesis import given, settings, strategies as st

from repro.cores import CV32E40P
from repro.cores.system import System
from repro.isa.assembler import assemble
from repro.isa.encoding import encode
from repro.isa.instructions import Instr
from repro.rtosunit.config import parse_config

MASK = 0xFFFFFFFF

_ALU_R = ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
          "slt", "sltu", "mul", "mulh", "mulhu", "div", "divu",
          "rem", "remu")
_ALU_I = ("addi", "andi", "ori", "xori", "slti", "sltiu")

# Work registers: x5..x15 (avoid x0/sp/gp/tp and the halt scratch x31).
_WORK = list(range(5, 16))

_r_instr = st.tuples(st.sampled_from(_ALU_R),
                     st.sampled_from(_WORK), st.sampled_from(_WORK),
                     st.sampled_from(_WORK))
_i_instr = st.tuples(st.sampled_from(_ALU_I),
                     st.sampled_from(_WORK), st.sampled_from(_WORK),
                     st.integers(-2048, 2047))


def _sgn(v):
    return v - (1 << 32) if v & 0x80000000 else v


def _ref_alu(op, a, b):
    """Independent reference semantics (table-driven, not shared code)."""
    if op in ("add", "addi"):
        return (a + b) & MASK
    if op == "sub":
        return (a - b) & MASK
    if op in ("and", "andi"):
        return a & (b & MASK)
    if op in ("or", "ori"):
        return a | (b & MASK)
    if op in ("xor", "xori"):
        return a ^ (b & MASK)
    if op == "sll":
        return (a << (b & 31)) & MASK
    if op == "srl":
        return (a >> (b & 31)) & MASK
    if op == "sra":
        return (_sgn(a) >> (b & 31)) & MASK
    if op in ("slt", "slti"):
        return 1 if _sgn(a) < _sgn(b & MASK) else 0
    if op in ("sltu", "sltiu"):
        return 1 if a < (b & MASK) else 0
    if op == "mul":
        return (a * b) & MASK
    if op == "mulh":
        return ((_sgn(a) * _sgn(b)) >> 32) & MASK
    if op == "mulhu":
        return ((a * b) >> 32) & MASK
    if op == "div":
        if b == 0:
            return MASK
        sa, sb = _sgn(a), _sgn(b)
        if sa == -(1 << 31) and sb == -1:
            return 1 << 31
        quotient = abs(sa) // abs(sb)
        return (quotient if (sa < 0) == (sb < 0) else -quotient) & MASK
    if op == "divu":
        return MASK if b == 0 else (a // b) & MASK
    if op == "rem":
        if b == 0:
            return a
        sa, sb = _sgn(a), _sgn(b)
        if sa == -(1 << 31) and sb == -1:
            return 0
        remainder = abs(sa) % abs(sb)
        return (remainder if sa >= 0 else -remainder) & MASK
    if op == "remu":
        return a if b == 0 else a % b
    raise AssertionError(op)


def _reference(seeds, ops):
    regs = [0] * 32
    for reg, value in zip(_WORK, seeds):
        regs[reg] = value
    for op in ops:
        if len(op) == 4 and op[0] in _ALU_R:
            mnemonic, rd, rs1, rs2 = op
            regs[rd] = _ref_alu(mnemonic, regs[rs1], regs[rs2])
        else:
            mnemonic, rd, rs1, imm = op
            if mnemonic in ("slti", "sltiu"):
                operand = imm & MASK
            else:
                operand = imm & MASK
            regs[rd] = _ref_alu(mnemonic, regs[rs1], operand)
    return regs


def _simulate(seeds, ops):
    source_lines = []
    for reg, value in zip(_WORK, seeds):
        source_lines.append(f"    li x{reg}, {value:#x}")
    for op in ops:
        if op[0] in _ALU_R:
            mnemonic, rd, rs1, rs2 = op
            source_lines.append(f"    {mnemonic} x{rd}, x{rs1}, x{rs2}")
        else:
            mnemonic, rd, rs1, imm = op
            source_lines.append(f"    {mnemonic} x{rd}, x{rs1}, {imm}")
    source_lines.append("    li x31, 0xFFFF0000")
    source_lines.append("    sw x0, 0(x31)")
    system = System(CV32E40P, parse_config("vanilla"))
    system.load(assemble("\n".join(source_lines) + "\n"))
    system.run(max_cycles=1_000_000)
    return system.core.regs


@settings(max_examples=150, deadline=None)
@given(seeds=st.lists(st.integers(0, MASK), min_size=len(_WORK),
                      max_size=len(_WORK)),
       ops=st.lists(st.one_of(_r_instr, _i_instr), min_size=1,
                    max_size=25))
def test_alu_differential(seeds, ops):
    simulated = _simulate(seeds, ops)
    reference = _reference(seeds, ops)
    for reg in _WORK:
        assert simulated[reg] == reference[reg], (reg, ops)
