"""Functional instruction semantics, cross-checked against Python."""

import pytest
from hypothesis import given, strategies as st

from repro.cores import CORE_CLASSES
from repro.cores.base import _divrem, _sgn
from tests.cores.helpers import run_regs

MASK32 = 0xFFFFFFFF

u32 = st.integers(min_value=0, max_value=MASK32)


class TestALU:
    def test_add_sub(self):
        regs = run_regs("li a0, 7\nli a1, 5\nadd a2, a0, a1\nsub a3, a0, a1\n")
        assert regs[12] == 12
        assert regs[13] == 2

    def test_sub_wraps(self):
        regs = run_regs("li a0, 0\nli a1, 1\nsub a2, a0, a1\n")
        assert regs[12] == MASK32

    def test_logic_ops(self):
        regs = run_regs(
            "li a0, 0xF0\nli a1, 0x3C\n"
            "and a2, a0, a1\nor a3, a0, a1\nxor a4, a0, a1\n")
        assert regs[12] == 0x30
        assert regs[13] == 0xFC
        assert regs[14] == 0xCC

    def test_shifts(self):
        regs = run_regs(
            "li a0, 0x80000000\nli a1, 4\n"
            "srl a2, a0, a1\nsra a3, a0, a1\nsll a4, a1, a1\n")
        assert regs[12] == 0x08000000
        assert regs[13] == 0xF8000000
        assert regs[14] == 0x40

    def test_shift_amount_masked_to_5_bits(self):
        regs = run_regs("li a0, 1\nli a1, 33\nsll a2, a0, a1\n")
        assert regs[12] == 2

    def test_immediate_shifts(self):
        regs = run_regs("li a0, 0xFF000000\nsrai a1, a0, 8\nsrli a2, a0, 8\n")
        assert regs[11] == 0xFFFF0000
        assert regs[12] == 0x00FF0000

    def test_slt_signed_vs_unsigned(self):
        regs = run_regs(
            "li a0, -1\nli a1, 1\n"
            "slt a2, a0, a1\nsltu a3, a0, a1\n")
        assert regs[12] == 1  # -1 < 1 signed
        assert regs[13] == 0  # 0xFFFFFFFF > 1 unsigned

    def test_slti_sltiu(self):
        regs = run_regs("li a0, -5\nslti a1, a0, 0\nsltiu a2, a0, 0\n")
        assert regs[11] == 1
        assert regs[12] == 0

    def test_lui_auipc(self):
        regs = run_regs("start: lui a0, 0x12345\nauipc a1, 0\n")
        assert regs[10] == 0x12345000
        assert regs[11] == 4  # pc of auipc

    def test_x0_writes_ignored(self):
        regs = run_regs("li t0, 99\nadd zero, t0, t0\n")
        assert regs[0] == 0


class TestMulDiv:
    def test_mul(self):
        regs = run_regs("li a0, 1000\nli a1, 1000\nmul a2, a0, a1\n")
        assert regs[12] == 1_000_000

    def test_mulh_signed(self):
        regs = run_regs("li a0, -2\nli a1, 3\nmulh a2, a0, a1\n")
        assert regs[12] == MASK32  # high word of -6

    def test_mulhu(self):
        regs = run_regs("li a0, 0x80000000\nli a1, 2\nmulhu a2, a0, a1\n")
        assert regs[12] == 1

    def test_div_rem(self):
        regs = run_regs("li a0, 17\nli a1, 5\ndiv a2, a0, a1\nrem a3, a0, a1\n")
        assert regs[12] == 3
        assert regs[13] == 2

    def test_div_negative_truncates(self):
        regs = run_regs("li a0, -7\nli a1, 2\ndiv a2, a0, a1\nrem a3, a0, a1\n")
        assert _sgn(regs[12]) == -3
        assert _sgn(regs[13]) == -1

    def test_div_by_zero(self):
        regs = run_regs("li a0, 5\nli a1, 0\ndiv a2, a0, a1\nrem a3, a0, a1\n")
        assert regs[12] == MASK32
        assert regs[13] == 5

    def test_div_overflow(self):
        regs = run_regs(
            "li a0, 0x80000000\nli a1, -1\ndiv a2, a0, a1\nrem a3, a0, a1\n")
        assert regs[12] == 0x80000000
        assert regs[13] == 0

    @given(a=u32, b=u32)
    def test_divrem_invariant(self, a, b):
        """For non-zero b: a == div(a,b)*b + rem(a,b)  (signed, wrapped)."""
        if b == 0:
            assert _divrem("div", a, b) == MASK32
            assert _divrem("rem", a, b) == a
            return
        quotient = _sgn(_divrem("div", a, b) & MASK32)
        remainder = _sgn(_divrem("rem", a, b) & MASK32)
        assert (quotient * _sgn(b) + remainder) & MASK32 == a

    @given(a=u32, b=u32)
    def test_mul_matches_python(self, a, b):
        assert _divrem("remu", a, b) == (a % b if b else a)


class TestLoadsStores:
    def test_word_round_trip(self):
        regs = run_regs(
            "li a0, 0x1000\nli a1, 0xCAFEBABE\nsw a1, 0(a0)\nlw a2, 0(a0)\n")
        assert regs[12] == 0xCAFEBABE

    def test_signed_byte_load(self):
        regs = run_regs(
            "li a0, 0x1000\nli a1, 0x80\nsb a1, 0(a0)\n"
            "lb a2, 0(a0)\nlbu a3, 0(a0)\n")
        assert regs[12] == (-128) & MASK32
        assert regs[13] == 0x80

    def test_signed_half_load(self):
        regs = run_regs(
            "li a0, 0x1000\nli a1, 0x8000\nsh a1, 0(a0)\n"
            "lh a2, 0(a0)\nlhu a3, 0(a0)\n")
        assert regs[12] == (-32768) & MASK32
        assert regs[13] == 0x8000

    def test_negative_offsets(self):
        regs = run_regs(
            "li a0, 0x1010\nli a1, 77\nsw a1, -16(a0)\nlw a2, -16(a0)\n")
        assert regs[12] == 77


class TestControlFlow:
    def test_taken_and_not_taken_branches(self):
        regs = run_regs("""
    li   a0, 3
    li   a1, 0
loop:
    addi a1, a1, 10
    addi a0, a0, -1
    bnez a0, loop
    beqz a0, done
    li   a1, 0
done:
""")
        assert regs[11] == 30

    def test_branch_comparisons(self):
        regs = run_regs("""
    li   a0, -1
    li   a1, 1
    li   a2, 0
    blt  a0, a1, s1
    j    end
s1: addi a2, a2, 1
    bltu a1, a0, s2
    j    end
s2: addi a2, a2, 1
    bge  a1, a0, s3
    j    end
s3: addi a2, a2, 1
    bgeu a0, a1, s4
    j    end
s4: addi a2, a2, 1
end:
""")
        assert regs[12] == 4

    def test_jal_links(self):
        regs = run_regs("""
    jal  ra, sub
    j    end
sub:
    li   a0, 55
    ret
end:
""")
        assert regs[10] == 55

    def test_jalr_computed_target(self):
        regs = run_regs("""
    la   t0, target
    jalr ra, 0(t0)
    j    end
target:
    li   a0, 11
    j    end
end:
""")
        assert regs[10] == 11

    @pytest.mark.parametrize("core", sorted(CORE_CLASSES))
    def test_same_semantics_on_all_cores(self, core):
        src = """
    li   s0, 0
    li   s1, 10
sum:
    add  s0, s0, s1
    addi s1, s1, -1
    bnez s1, sum
"""
        regs = run_regs(src, core=core)
        assert regs[8] == 55


class TestCSRInstructions:
    def test_csrrw_swap(self):
        regs = run_regs(
            "li a0, 0x1234\ncsrw mscratch, a0\n"
            "li a1, 0x5678\ncsrrw a2, mscratch, a1\ncsrr a3, mscratch\n")
        assert regs[12] == 0x1234
        assert regs[13] == 0x5678

    def test_csrrs_sets_bits(self):
        regs = run_regs(
            "li a0, 0x0F\ncsrw mscratch, a0\n"
            "li a1, 0xF0\ncsrrs a2, mscratch, a1\ncsrr a3, mscratch\n")
        assert regs[12] == 0x0F
        assert regs[13] == 0xFF

    def test_csrrc_clears_bits(self):
        regs = run_regs(
            "li a0, 0xFF\ncsrw mscratch, a0\n"
            "li a1, 0x0F\ncsrrc a2, mscratch, a1\ncsrr a3, mscratch\n")
        assert regs[13] == 0xF0

    def test_csr_immediate_forms(self):
        regs = run_regs(
            "csrwi mscratch, 5\ncsrr a0, mscratch\n"
            "csrsi mscratch, 2\ncsrr a1, mscratch\n"
            "csrci mscratch, 1\ncsrr a2, mscratch\n")
        assert regs[10] == 5
        assert regs[11] == 7
        assert regs[12] == 6

    def test_csrrs_x0_does_not_write(self):
        regs = run_regs(
            "csrwi mscratch, 9\ncsrr a0, mscratch\ncsrr a1, mscratch\n")
        assert regs[10] == regs[11] == 9
