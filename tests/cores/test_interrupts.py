"""Interrupt sources, trap entry/exit, and latency recording."""

import pytest

from repro.cores.clint import Clint
from repro.errors import SimulationError
from repro.isa import csr as csrmod
from tests.cores.helpers import run_fragment

TRAP_SETUP = """
    la   t0, handler
    csrw mtvec, t0
    li   t0, 0x888
    csrw mie, t0
    csrsi mstatus, 8
"""


class TestClintModel:
    def _clint(self, **kwargs):
        class _FakeCore:
            cycle = 0
        clint = Clint(**kwargs)
        clint.attach(_FakeCore())
        return clint

    def test_timer_pending_after_period(self):
        clint = self._clint(tick_period=100)
        clint._core.cycle = 99
        assert clint.pending(99, 0xFFF) is None
        assert clint.pending(100, 0xFFF) == (csrmod.CAUSE_MTI, 100)

    def test_timer_masked_by_mie(self):
        clint = self._clint(tick_period=10)
        assert clint.pending(50, 0) is None

    def test_priority_external_over_software_over_timer(self):
        clint = self._clint(tick_period=10, external_events=[5])
        clint.write_mmio(0x2000000, 1)  # msip
        cause, _ = clint.pending(50, 0xFFF)
        assert cause == csrmod.CAUSE_MEI
        clint.acknowledge(csrmod.CAUSE_MEI, 50)
        cause, _ = clint.pending(50, 0xFFF)
        assert cause == csrmod.CAUSE_MSI
        clint.acknowledge(csrmod.CAUSE_MSI, 50)
        cause, _ = clint.pending(50, 0xFFF)
        assert cause == csrmod.CAUSE_MTI

    def test_autoreset_rearms_timer(self):
        clint = self._clint(tick_period=100, autoreset=True)
        clint.acknowledge(csrmod.CAUSE_MTI, 150)
        assert clint.mtimecmp == 250

    def test_manual_reset_required_without_autoreset(self):
        clint = self._clint(tick_period=100)
        clint.acknowledge(csrmod.CAUSE_MTI, 150)
        assert clint.mtimecmp == 100  # unchanged: software must update

    def test_external_trigger_cycle_preserved(self):
        clint = self._clint(external_events=[30])
        assert clint.pending(100, 0xFFF) == (csrmod.CAUSE_MEI, 30)

    def test_unknown_mmio_rejected(self):
        clint = self._clint()
        with pytest.raises(SimulationError):
            clint.read_mmio(0x2000004)


class TestTrapFlow:
    def test_software_interrupt_taken(self):
        src = TRAP_SETUP + """
    li   t0, 0x2000000
    li   t1, 1
    sw   t1, 0(t0)        # raise msip
    li   a0, 1            # runs after mret
    j    end
handler:
    li   a1, 42
    mret
end:
"""
        system = run_fragment(src, tick_period=1 << 30)
        assert system.core.regs[10] == 1
        assert system.core.regs[11] == 42
        assert system.core.stats.traps == 1
        assert system.core.stats.mrets == 1

    def test_latency_recorded_per_switch(self):
        src = TRAP_SETUP + """
    li   t0, 0x2000000
    li   t1, 1
    sw   t1, 0(t0)
    j    end
handler:
    nop
    nop
    mret
end:
"""
        system = run_fragment(src)
        assert len(system.switches) == 1
        record = system.switches[0]
        assert record.trigger_cycle <= record.entry_cycle < record.mret_cycle
        assert record.latency > 0

    def test_timer_interrupt_and_mtimecmp_rearm(self):
        src = TRAP_SETUP + """
wait:
    lw   t2, count(zero)   # will fault: use la instead
    j    wait
"""
        # Simpler: count handler entries via a memory counter.
        src = TRAP_SETUP + """
    la   s0, count
wait:
    lw   t2, 0(s0)
    li   t3, 2
    blt  t2, t3, wait
    j    end
handler:
    li   t0, 0x200BFF8    # mtime
    lw   t1, 0(t0)
    li   t0, 0x2004000    # mtimecmp
    addi t1, t1, 200
    sw   t1, 0(t0)
    la   t4, count
    lw   t5, 0(t4)
    addi t5, t5, 1
    sw   t5, 0(t4)
    mret
end:
    j    halt
count: .word 0
halt:
"""
        system = run_fragment(src, tick_period=200, max_cycles=100_000)
        assert system.core.stats.traps >= 2

    def test_interrupts_masked_inside_handler(self):
        """A pending msip during a handler must wait for mret."""
        src = TRAP_SETUP + """
    li   t0, 0x2000000
    li   t1, 1
    sw   t1, 0(t0)
    j    end
handler:
    la   t2, entered
    lw   t3, 0(t2)
    addi t3, t3, 1
    sw   t3, 0(t2)
    li   t4, 2
    bge  t3, t4, h_done   # only the first entry re-raises
    li   t0, 0x2000000
    li   t1, 1
    sw   t1, 0(t0)        # re-raise inside the handler
    li   t4, 100
spin:
    addi t4, t4, -1
    bnez t4, spin
h_done:
    mret
end:
    la   t2, entered
    lw   a0, 0(t2)
    li   t5, 2
    blt  a0, t5, end      # wait for second entry
    j    fin
entered: .word 0
fin:
"""
        system = run_fragment(src, max_cycles=200_000)
        records = system.switches
        assert len(records) == 2
        # The second trigger happened inside the first handler; its
        # latency includes the masked window.
        assert records[1].trigger_cycle < records[0].mret_cycle

    def test_wfi_skips_to_timer(self):
        src = TRAP_SETUP + """
    wfi
    j    end
handler:
    li   t0, 0x2004000
    li   t1, 0x7FFFFFFF
    sw   t1, 0(t0)        # push timer far away
    mret
end:
"""
        system = run_fragment(src, tick_period=5000, max_cycles=100_000)
        assert system.core.stats.traps == 1
        assert system.core.cycle >= 5000

    def test_external_event_taken(self):
        src = TRAP_SETUP + """
    li   s0, 0
loop:
    addi s0, s0, 1
    li   t0, 1000
    blt  s0, t0, loop
    j    end
handler:
    li   a1, 7
    mret
end:
"""
        system = run_fragment(src, external_events=[500],
                              max_cycles=100_000)
        assert system.core.regs[11] == 7
        assert system.switches[0].trigger_cycle == 500
