"""NaxRiscv-specific behaviour (§5.3): OoO timing, LSU, ctxQueue costs."""

from repro.cores import NaxRiscv, build_system
from repro.rtosunit.config import parse_config
from tests.cores.helpers import run_fragment


def cycles_of(source: str) -> int:
    return run_fragment(source, core="naxriscv").core.cycle


class TestLSUSerialisation:
    def test_memory_ops_single_port(self):
        """Bursts of independent stores cannot dual-issue: one LSU."""
        stores = "    li a0, 0x1000\n" + "".join(
            f"    sw a0, {4 * i}(a0)\n" for i in range(24))
        alus = "    li a0, 0x1000\n" + "".join(
            f"    addi x{5 + (i % 8)}, x0, {i}\n" for i in range(24))
        assert cycles_of(stores) > cycles_of(alus)

    def test_miss_occupies_port_longer(self):
        """A cache miss blocks the LSU for part of the refill."""
        same_line = "    li a0, 0x1000\n" + "".join(
            f"    lw a{1 + (i % 5)}, {4 * (i % 8)}(a0)\n" for i in range(16))
        spread_lines = "    li a0, 0x1000\n" + "".join(
            f"    lw a{1 + (i % 5)}, {64 * i}(a0)\n" for i in range(16))
        assert cycles_of(spread_lines) > cycles_of(same_line)


class TestCtxQueueCosts:
    def test_word_cost_hit_vs_miss(self):
        system = build_system("naxriscv", parse_config("SLT"))
        core = system.core
        miss = core.rtosunit_word_cost(0x4000, False)
        hit = core.rtosunit_word_cost(0x4000, False)
        assert miss == 1 + core.params.cache_line_words
        assert hit == 1

    def test_contexts_stay_cacheable(self):
        """§5.3: LSU-level arbitration needs no cache invalidation, so a
        second switch to the same task hits in the D$."""
        system = build_system("naxriscv", parse_config("SLT"))
        region = system.layout.context_region
        slot = region.slot_addr(0)
        for offset in range(0, 128, 4):
            system.core.rtosunit_word_cost(slot + offset, True)
        assert all(system.core.rtosunit_word_cost(slot + o, False) == 1
                   for o in range(0, 124, 4))

    def test_cv32rt_invalidation_forces_misses(self):
        """§6: the dedicated-port bypass invalidates the snapshot lines."""
        system = build_system("naxriscv", parse_config("vanilla"))
        core = system.core
        base = 0x3000
        core.dcache.lookup(base, False)
        core.dcache.lookup(base + 32, False)
        assert core.dcache.contains(base)
        core.cv32rt_invalidate(base, 64)
        assert not core.dcache.contains(base)
        assert not core.dcache.contains(base + 32)


class TestOoOWindow:
    def test_independent_chains_overlap(self):
        """Two independent dependency chains interleave on 2-wide issue."""
        single_chain = "    li a0, 1\n" + "    addi a0, a0, 1\n" * 40
        two_chains = ("    li a0, 1\n    li a1, 1\n"
                      + ("    addi a0, a0, 1\n    addi a1, a1, 1\n" * 20))
        assert cycles_of(two_chains) < cycles_of(single_chain) + 5

    def test_custom_commit_delay_charged(self):
        params = NaxRiscv.PARAMS
        assert params.custom_commit_delay >= 1

    def test_csr_serialises_window(self):
        with_csr = ("    li a0, 1\n"
                    + "    csrw mscratch, a0\n" * 8
                    + "    addi a1, a1, 1\n" * 8)
        without = ("    li a0, 1\n"
                   + "    addi a2, a2, 1\n" * 8
                   + "    addi a1, a1, 1\n" * 8)
        assert cycles_of(with_csr) > cycles_of(without) + 8


class TestTrapCosts:
    def test_deep_pipeline_trap_cost(self):
        assert NaxRiscv.PARAMS.trap_entry_cycles > 8
        assert NaxRiscv.PARAMS.mret_cycles > 8
