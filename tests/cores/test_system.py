"""System wiring: MMIO routing, probes, console, banking."""

import pytest

from repro.cores import CORE_CLASSES, build_system
from repro.cores.system import System
from repro.errors import ConfigurationError, SimulationError
from repro.isa.assembler import assemble
from repro.rtosunit.config import parse_config
from tests.cores.helpers import run_fragment


class TestBuildSystem:
    def test_unknown_core_rejected(self):
        with pytest.raises(ConfigurationError):
            build_system("m68k", parse_config("vanilla"))

    def test_core_names_case_insensitive(self):
        system = build_system("CV32E40P", parse_config("vanilla"))
        assert system.core.__class__.__name__ == "CV32E40P"

    def test_vanilla_has_no_unit(self):
        assert build_system("cv32e40p", parse_config("vanilla")).unit is None

    def test_accelerated_has_unit(self):
        system = build_system("cv32e40p", parse_config("SLT"))
        assert system.unit is not None
        assert system.unit.core is system.core

    def test_cva6_context_region_uncached(self):
        system = build_system("cva6", parse_config("SLT"))
        region = system.layout.context_region
        assert (region.base, region.end) in system.core.uncached_ranges

    def test_nax_unit_word_cost_is_cache_aware(self):
        system = build_system("naxriscv", parse_config("SLT"))
        assert system.unit.word_cost == system.core.rtosunit_word_cost


class TestSimulatorControl:
    def test_console_collects_characters(self):
        system = run_fragment("""
    li   t0, 0xFFFF0004
    li   a0, 'h'
    sw   a0, 0(t0)
    li   a0, 'i'
    sw   a0, 0(t0)
""")
        assert system.console_text == "hi"

    def test_probe_records_value_and_cycle(self):
        system = run_fragment("""
    li   t0, 0xFFFF0008
    li   a0, 7
    sw   a0, 0(t0)
    nop
    nop
    li   a0, 9
    sw   a0, 0(t0)
""")
        values = [value for value, _ in system.probes]
        cycles = [cycle for _, cycle in system.probes]
        assert values == [7, 9]
        assert cycles[1] > cycles[0]

    def test_halt_sets_exit_code(self):
        system = run_fragment("""
    li   t0, 0xFFFF0000
    li   a0, 123
    sw   a0, 0(t0)
""", halt=False)
        assert system.core.exit_code == 123
        assert system.core.halted

    def test_unhandled_mmio_raises(self):
        from repro.errors import ReproError

        # An address just past the simulator-control block is neither
        # MMIO nor RAM: the access must fail loudly, not silently.
        with pytest.raises(ReproError):
            run_fragment("""
    li   t0, 0xFFFF0008
    lw   a0, 4(t0)
""")


class TestRegisterBanking:
    def _system(self, config_name):
        system = build_system("cv32e40p", parse_config(config_name))
        return system

    def test_store_configs_have_two_banks(self):
        assert len(self._system("S").core.banks) == 2
        assert len(self._system("SLT").core.banks) == 2

    def test_vanilla_and_t_have_one_bank(self):
        assert len(self._system("vanilla").core.banks) == 1
        assert len(self._system("T").core.banks) == 1

    def test_cv32rt_has_no_banking(self):
        """CV32RT snapshots; it does not switch register banks."""
        assert len(self._system("CV32RT").core.banks) == 1

    def test_app_bank_is_bank_zero(self):
        core = self._system("SLT").core
        core.active_bank = 1
        assert core.app_bank is core.banks[0]
        assert core.regs is core.banks[1]

    def test_bank_isolation_during_isr(self):
        """ISR writes under banking must not corrupt the APP bank."""
        source = """
    la   t0, handler
    csrw mtvec, t0
    li   t0, 0x888
    csrw mie, t0
    li   s0, 0x1234
    csrsi mstatus, 8
    li   t0, 0x2000000
    li   t1, 1
    sw   t1, 0(t0)         # yield into the ISR
after:
    li   t6, 0xFFFF0000
    sw   s0, 0(t6)         # exit code = s0 (must survive)
handler:
    li   s0, 0xBAD         # clobbers the ISR bank only
    la   t2, 0x60000       # restore path: set_context_id for task 0
    li   a0, 0
    set_context_id a0
    mret
"""
        system = build_system("cv32e40p", parse_config("SL"),
                              tick_period=1 << 30)
        program = assemble(source)
        # Seed task 0's context slot so the restore lands back at 'after'
        # with s0 preserved.
        system.load(program)
        core = system.core
        system.unit.boot(0)
        slot = system.layout.context_region.slot_addr(0)
        # Context layout: x8 (s0) sits at index 5 of the saved order.
        from repro.mem.regions import CONTEXT_REG_ORDER
        for index, reg in enumerate(CONTEXT_REG_ORDER):
            value = 0x1234 if reg == 8 else 0
            system.memory.write_word_raw(slot + 4 * index, value)
        system.memory.write_word_raw(slot + 4 * 29, 0x1880)  # mstatus
        system.memory.write_word_raw(slot + 4 * 30,
                                     program.symbols["after"])  # mepc
        system.run(max_cycles=100_000)
        assert core.exit_code == 0x1234
