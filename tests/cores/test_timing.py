"""Timing-model behaviour of the in-order and OoO cores."""

from repro.cores import CORE_CLASSES, CV32E40P, CVA6, NaxRiscv
from tests.cores.helpers import run_fragment


def cycles_of(source: str, core: str = "cv32e40p") -> int:
    return run_fragment(source, core=core).core.cycle


class TestInOrderTiming:
    def test_alu_chain_is_one_per_cycle(self):
        base = cycles_of("nop\n")
        ten = cycles_of("nop\n" * 11)
        assert ten - base == 10

    def test_load_use_stall(self):
        """Consuming a load result in the next instruction stalls."""
        independent = cycles_of(
            "li a0, 0x1000\nlw a1, 0(a0)\nadd a2, a3, a4\n")
        dependent = cycles_of(
            "li a0, 0x1000\nlw a1, 0(a0)\nadd a2, a1, a1\n")
        assert dependent == independent + 1

    def test_taken_branch_penalty(self):
        not_taken = cycles_of("li a0, 1\nbeqz a0, skip\nnop\nskip: nop\n")
        taken = cycles_of("li a0, 0\nbeqz a0, skip\nnop\nskip: nop\n")
        # Taken skips one instruction (-1) but pays the flush (+2).
        assert taken == not_taken + CV32E40P.PARAMS.branch_taken_penalty - 1

    def test_div_occupies_pipeline(self):
        fast = cycles_of("li a0, 100\nli a1, 7\nmul a2, a0, a1\n")
        slow = cycles_of("li a0, 100\nli a1, 7\ndiv a2, a0, a1\n")
        assert slow - fast >= 30

    def test_mul_latency_hidden_if_not_consumed(self):
        spaced = cycles_of(
            "li a0, 3\nmul a1, a0, a0\nnop\nnop\nadd a2, a1, a1\n")
        tight = cycles_of(
            "li a0, 3\nmul a1, a0, a0\nadd a2, a1, a1\nnop\nnop\n")
        assert spaced <= tight + 1


class TestCVA6Timing:
    def test_cache_warm_loads_faster(self):
        cold_then_warm = """
    li   a0, 0x1000
    lw   a1, 0(a0)
    lw   a2, 0(a0)
"""
        system = run_fragment(cold_then_warm, core="cva6")
        assert system.core.dcache.hits >= 1
        assert system.core.dcache.misses >= 1

    def test_predictor_learns_loop_branch(self):
        loop = """
    li   a0, 50
loop:
    addi a0, a0, -1
    bnez a0, loop
"""
        system = run_fragment(loop, core="cva6")
        predictor = system.core.predictor
        assert predictor.mispredictions < predictor.predictions / 4

    def test_write_through_stores_hit_bus(self):
        system = run_fragment(
            "li a0, 0x1000\nli a1, 1\nsw a1, 0(a0)\nsw a1, 4(a0)\n",
            core="cva6")
        assert system.timeline.core_cycles >= 2


class TestNaxRiscvTiming:
    def test_dual_issue_beats_scalar_on_independent_code(self):
        independent = "\n".join(
            f"    addi x{5 + (i % 8)}, x0, {i}" for i in range(64)) + "\n"
        nax = cycles_of(independent, core="naxriscv")
        scalar = cycles_of(independent, core="cv32e40p")
        assert nax < scalar

    def test_dependent_chain_no_dual_issue_benefit(self):
        chain = "    li a0, 0\n" + "    addi a0, a0, 1\n" * 64
        nax = cycles_of(chain, core="naxriscv")
        # A fully dependent chain issues one per cycle at best.
        assert nax >= 64

    def test_mispredict_penalty_visible(self):
        # Alternating branch direction defeats the bimodal predictor.
        src = """
    li   s0, 40
    li   s1, 0
loop:
    andi t0, s0, 1
    beqz t0, even
    addi s1, s1, 1
even:
    addi s0, s0, -1
    bnez s0, loop
"""
        system = run_fragment(src, core="naxriscv")
        assert system.core.stats.mispredicts > 5

    def test_cache_shared_with_rtosunit_word_cost(self):
        system = run_fragment("nop\n", core="naxriscv")
        core = system.core
        addr = 0x2000
        first = core.rtosunit_word_cost(addr, False)
        second = core.rtosunit_word_cost(addr, False)
        assert first > second == 1  # miss then hit


class TestStatsAccounting:
    def test_instret_counts(self):
        system = run_fragment("nop\nnop\nnop\n")
        # 3 nops + 2 halt-tail instructions (li is one instruction here).
        assert system.core.stats.instret >= 5

    def test_load_store_counters(self):
        system = run_fragment(
            "li a0, 0x1000\nsw a0, 0(a0)\nlw a1, 0(a0)\n")
        assert system.core.stats.loads == 1
        assert system.core.stats.stores >= 2  # data store + halt store

    def test_branch_counters(self):
        system = run_fragment("li a0, 2\nl: addi a0, a0, -1\nbnez a0, l\n")
        assert system.core.stats.branches == 2
        assert system.core.stats.taken_branches == 1
