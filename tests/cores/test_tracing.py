"""Execution tracer and switch-timeline rendering."""

from repro.cores import attach_tracer, format_switch_timeline
from repro.kernel.tasks import KernelObjects, TaskSpec
from repro.kernel.builder import build_kernel_system
from repro.rtosunit.config import parse_config
from tests.cores.helpers import run_fragment


def _traced_system(config="SLT", only_isr=False, capacity=4096):
    body_a = """\
task_a:
    li   s0, 3
a_loop:
    jal  k_yield
    addi s0, s0, -1
    bnez s0, a_loop
    li   a0, 0
    jal  k_halt
"""
    body_b = "task_b:\nb_loop:\n    jal  k_yield\n    j    b_loop\n"
    objects = KernelObjects(tasks=[TaskSpec("a", body_a, priority=2),
                                   TaskSpec("b", body_b, priority=2)])
    system = build_kernel_system("cv32e40p", parse_config(config), objects,
                                 tick_period=1 << 20)
    tracer = attach_tracer(system.core, capacity=capacity,
                           only_isr=only_isr)
    system.run(max_cycles=500_000)
    return system, tracer


class TestTracer:
    def test_captures_instructions(self):
        _, tracer = _traced_system()
        kinds = {event.kind for event in tracer.events}
        assert "instr" in kinds and "trap" in kinds and "mret" in kinds
        assert tracer.instructions_seen > 100

    def test_isr_only_filter(self):
        system, tracer = _traced_system(only_isr=True)
        instr_events = [e for e in tracer.events if e.kind == "instr"]
        assert instr_events
        # Under SLT, every traced instruction belongs to the tiny ISR.
        isr_pcs = {e.pc for e in instr_events}
        assert all(pc < 0x200 for pc in isr_pcs)

    def test_ring_buffer_bounds_memory(self):
        _, tracer = _traced_system(capacity=64)
        assert len(tracer.events) == 64
        assert tracer.instructions_seen > 64

    def test_format_is_readable(self):
        _, tracer = _traced_system(only_isr=True)
        text = tracer.format(limit=10)
        assert "get_hw_sched" in text or "mret" in text

    def test_cycles_monotonic(self):
        _, tracer = _traced_system()
        cycles = [event.cycle for event in tracer.events]
        assert cycles == sorted(cycles)

    def test_no_tracer_no_events(self):
        system = run_fragment("nop\nnop\n")
        assert system.core.tracer is None


class _FakeCore:
    """Minimal core surface for driving Tracer hooks directly."""

    def __init__(self):
        self.cycle = 0
        self.pc = 0
        self.in_isr = False


def _instr(addr):
    """A real decoded instruction (addi x1, x1, 1) at *addr*."""
    from repro.isa.encoding import decode

    return decode(0x00108093, addr=addr)


class TestTracerUnit:
    """Hook-level behaviour, independent of a full kernel simulation."""

    def test_eviction_keeps_latest_events(self):
        from repro.cores.tracing import Tracer

        tracer = Tracer(capacity=4)
        core = _FakeCore()
        for cycle in range(10):
            core.cycle = cycle
            tracer.on_instr(core, _instr(cycle * 4))
        assert tracer.instructions_seen == 10
        assert len(tracer.events) == 4  # deque maxlen enforced
        # The *latest* events win: a crash site stays in view.
        assert [event.cycle for event in tracer.events] == [6, 7, 8, 9]

    def test_trap_and_mret_capture(self):
        from repro.cores.tracing import Tracer

        tracer = Tracer(capacity=16)
        core = _FakeCore()
        core.cycle, core.pc = 100, 0x80
        tracer.on_trap(core, cause=0x8000000B)
        core.cycle, core.pc = 130, 0x94
        tracer.on_mret(core)
        kinds = [event.kind for event in tracer.events]
        assert kinds == ["trap", "mret"]
        trap, mret = tracer.events
        assert trap.cycle == 100 and trap.pc == 0x80
        assert "mcause=0x8000000b" in trap.text
        assert mret.cycle == 130 and "resume" in mret.text
        # Rendering marks trap entry/exit distinctly.
        text = tracer.format()
        assert ">>>" in text and "<<<" in text

    def test_only_isr_skips_task_code_but_keeps_boundaries(self):
        from repro.cores.tracing import Tracer

        tracer = Tracer(capacity=16, only_isr=True)
        core = _FakeCore()
        tracer.on_instr(core, _instr(0x1000))  # task code: dropped
        core.in_isr = True
        tracer.on_instr(core, _instr(0x40))    # ISR code: kept
        assert tracer.instructions_seen == 2
        assert [event.pc for event in tracer.events] == [0x40]

    def test_format_limit_takes_tail(self):
        from repro.cores.tracing import Tracer

        tracer = Tracer(capacity=16)
        core = _FakeCore()
        for cycle in range(8):
            core.cycle = cycle
            tracer.on_instr(core, _instr(cycle * 4))
        lines = tracer.format(limit=3).splitlines()
        assert len(lines) == 3
        assert lines[-1].startswith(f"{7:>10d}")


class TestSwitchTimeline:
    def test_breakdown_adds_up(self):
        system, _ = _traced_system()
        text = format_switch_timeline(system.switches, limit=5)
        assert "response" in text and "ISR" in text
        for record in system.switches[:5]:
            response = record.entry_cycle - record.trigger_cycle
            isr = record.mret_cycle - record.entry_cycle
            assert response + isr == record.latency

    def test_limit_respected(self):
        system, _ = _traced_system()
        text = format_switch_timeline(system.switches, limit=2)
        assert len(text.splitlines()) == 4  # header + rule + 2 rows

    def test_response_isr_split_values(self):
        """The rendered columns carry the exact trigger→entry (response)
        and entry→mret (ISR) splits of each record."""
        from repro.cores.system import SwitchRecord

        text = format_switch_timeline([SwitchRecord(100, 104, 150)],
                                      limit=5)
        row = text.splitlines()[-1].split()
        assert row == ["0", "100", "104", "150", "4", "46", "50"]
