"""Content-addressed cache: hits, misses, invalidation, checkpoints."""

import json

import pytest

from repro.dse import GridPoint, ResultCache, SweepManifest, source_fingerprint
from repro.errors import ExplorationError

POINT = GridPoint("cv32e40p", "SLT", "yield_pingpong", iterations=2, seed=1)
PAYLOAD = {"core": "cv32e40p", "config": "SLT", "latencies": [69, 70]}


class TestFingerprint:
    def test_stable_within_process(self):
        assert source_fingerprint() == source_fingerprint()
        assert len(source_fingerprint()) == 16


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(POINT) is None
        cache.put(POINT, PAYLOAD)
        assert cache.get(POINT) == PAYLOAD
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_key_depends_on_every_axis(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key(POINT)
        for other in (
            GridPoint("cva6", "SLT", "yield_pingpong", 2, 1),
            GridPoint("cv32e40p", "T", "yield_pingpong", 2, 1),
            GridPoint("cv32e40p", "SLT", "sem_signal", 2, 1),
            GridPoint("cv32e40p", "SLT", "yield_pingpong", 3, 1),
            GridPoint("cv32e40p", "SLT", "yield_pingpong", 2, 2),
        ):
            assert cache.key(other) != base

    def test_source_change_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, fingerprint="aaaa")
        old.put(POINT, PAYLOAD)
        new = ResultCache(tmp_path, fingerprint="bbbb")
        assert new.get(POINT) is None
        assert new.stats.invalidated == 1
        assert len(list(tmp_path.glob("*.json"))) == 0

    def test_corrupt_entry_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(POINT, PAYLOAD)
        cache.path(POINT).write_text("not json{")
        assert cache.get(POINT) is None
        assert cache.stats.corrupt_evictions == 1
        assert not cache.path(POINT).exists()

    def test_payload_digest_verified_on_read(self, tmp_path):
        # A decodable entry whose payload no longer matches its stored
        # digest (silent disk rot) must be evicted, not served.
        cache = ResultCache(tmp_path)
        cache.put(POINT, PAYLOAD)
        path = cache.path(POINT)
        entry = json.loads(path.read_text())
        entry["run"]["latencies"] = [1, 2]  # rot: digest now stale
        path.write_text(json.dumps(entry))
        assert cache.get(POINT) is None
        assert cache.stats.corrupt_evictions == 1
        assert not path.exists()
        # The tier self-heals: a re-store serves clean hits again.
        cache.put(POINT, PAYLOAD)
        assert cache.get(POINT) == PAYLOAD

    def test_flipped_byte_in_payload_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(POINT, PAYLOAD)
        path = cache.path(POINT)
        blob = bytearray(path.read_bytes())
        # Flip a digit inside the served payload: still valid JSON, but
        # the content no longer matches the stored digest.
        pos = blob.index(b"69", blob.index(b'"run"'))
        blob[pos] ^= 0x01
        path.write_bytes(bytes(blob))
        assert cache.get(POINT) is None
        assert cache.stats.corrupt_evictions == 1

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(POINT, PAYLOAD)
        assert len(cache) == 1


class TestSweepManifest:
    def test_checkpoint_and_resume(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = SweepManifest(path)
        points = [POINT, GridPoint("cva6", "SLT", "yield_pingpong", 2, 1)]
        manifest.begin(points)
        manifest.mark_done(points[0])
        # A fresh process resuming the same grid sees the checkpoint.
        resumed = SweepManifest(path)
        resumed.begin(points)
        assert resumed.done_count(points) == 1

    def test_grid_change_resets(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = SweepManifest(path)
        manifest.begin([POINT])
        manifest.mark_done(POINT)
        other_grid = [GridPoint("cva6", "T", "sem_signal", 2, 1)]
        resumed = SweepManifest(path)
        resumed.begin(other_grid)
        assert resumed.done_count(other_grid) == 0

    def test_mark_done_is_idempotent(self, tmp_path):
        manifest = SweepManifest(tmp_path / "m.json")
        manifest.begin([POINT])
        manifest.mark_done(POINT)
        manifest.mark_done(POINT)
        assert json.loads((tmp_path / "m.json").read_text())["done"] == \
            [SweepManifest.point_id(POINT)]

    def test_corrupt_manifest_raises(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{broken")
        with pytest.raises(ExplorationError, match="corrupt sweep manifest"):
            SweepManifest(path)
