"""Serial/parallel and cold/warm byte-identity of sweep exports.

The acceptance property of the whole subsystem: for a fixed seed, the
JSON a sweep exports is a pure function of the grid — not of the number
of worker processes and not of the cache state.
"""

from repro.dse import ResultCache
from repro.harness import sweep, sweep_dict, write_json
from repro.workloads import delay_periodic, yield_pingpong

GRID = dict(cores=("cv32e40p",), configs=("vanilla", "SLT"), iterations=2,
            workloads=(yield_pingpong, delay_periodic), seed=7)


def _export(tmp_path, name, results):
    path = tmp_path / name
    write_json(str(path), sweep_dict(results))
    return path.read_bytes()


class TestSerialParallelIdentity:
    def test_jobs1_vs_jobs4_byte_identical(self, tmp_path):
        serial = _export(tmp_path, "serial.json", sweep(jobs=1, **GRID))
        parallel = _export(tmp_path, "parallel.json", sweep(jobs=4, **GRID))
        assert serial == parallel

    def test_seed_is_recorded_per_grid_position(self):
        results = sweep(jobs=1, **GRID)
        again = sweep(jobs=4, **GRID)
        for key, suite in results.items():
            for run, rerun in zip(suite.runs, again[key].runs):
                assert run.seed == rerun.seed
                assert run.seed != 0

    def test_different_seed_changes_export_not_latencies(self, tmp_path):
        a = sweep(jobs=1, **GRID)
        b = sweep(jobs=1, **dict(GRID, seed=8))
        key = ("cv32e40p", "SLT")
        # The simulation is deterministic: latencies don't move...
        assert a[key].runs[0].latencies == b[key].runs[0].latencies
        # ...but the recorded per-run seeds (and hence cache keys) do.
        assert a[key].runs[0].seed != b[key].runs[0].seed


class TestWarmCacheIdentity:
    def test_cold_and_warm_exports_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = _export(tmp_path, "cold.json", sweep(cache=cache, **GRID))
        assert cache.stats.misses == 4 and cache.stats.hits == 0
        warm_cache = ResultCache(tmp_path / "cache")
        warm = _export(tmp_path, "warm.json",
                       sweep(cache=warm_cache, **GRID))
        assert warm_cache.stats.hits == 4 and warm_cache.stats.misses == 0
        assert cold == warm
