"""Grid construction, parallel_map semantics, executor determinism."""

import os
import pathlib
import time

import pytest

from repro.dse import (
    DSEExecutor,
    GridPoint,
    build_grid,
    execute_point,
    group_suites,
    parallel_map,
)
from repro.dse.executor import PoolHealth
from repro.errors import ExplorationError
from repro.harness.experiment import derive_point_seed


def _double(value):
    return value * 2


def _boom(_value):
    raise RuntimeError("boom")


def _fail_once(arg):
    """Worker that fails while its marker file exists (consuming it)."""
    value, marker_dir = arg
    marker = pathlib.Path(marker_dir) / f"fail-{value}"
    if marker.exists():
        marker.unlink()
        raise RuntimeError("flaky")
    return value * 10


def _die_once(arg):
    """Worker that hard-kills its process while its marker exists."""
    value, marker_dir = arg
    marker = pathlib.Path(marker_dir) / f"die-{value}"
    if marker.exists():
        marker.unlink()
        os._exit(57)  # no exception, no cleanup: a real worker death
    return value * 10


def _stall_once(arg):
    """Worker that wedges (far past any deadline) while its marker exists."""
    value, marker_dir = arg
    marker = pathlib.Path(marker_dir) / f"stall-{value}"
    if marker.exists():
        marker.unlink()
        time.sleep(60.0)
    return value * 10


class TestGrid:
    def test_canonical_order(self):
        points = build_grid(cores=("a", "b"), configs=("x",),
                            workloads=("w1", "w2"), iterations=3, seed=9)
        assert [p.label for p in points] == [
            "a/x/w1", "a/x/w2", "b/x/w1", "b/x/w2"]
        assert all(p.iterations == 3 and p.seed == 9 for p in points)

    def test_points_are_hashable_and_serialisable(self):
        point = GridPoint("cv32e40p", "SLT", "yield_pingpong", 2, 1)
        assert {point: 1}[point] == 1
        assert point.as_dict()["config"] == "SLT"


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_double, [3, 1, 2], jobs=1) == [6, 2, 4]

    def test_parallel_preserves_order(self):
        assert parallel_map(_double, list(range(8)), jobs=2) == \
            [v * 2 for v in range(8)]

    def test_serial_retry_then_fail(self):
        with pytest.raises(ExplorationError, match="after 2 attempts"):
            parallel_map(_boom, [1], jobs=1, retries=1)

    def test_serial_on_result_hook(self):
        seen = []
        parallel_map(_double, [5, 6], jobs=1,
                     on_result=lambda i, r: seen.append((i, r)))
        assert seen == [(0, 10), (1, 12)]

    def test_parallel_retry_recovers(self, tmp_path):
        for value in (1, 2):
            (tmp_path / f"fail-{value}").touch()
        results = parallel_map(_fail_once,
                               [(v, str(tmp_path)) for v in (1, 2, 3)],
                               jobs=2, retries=1)
        assert results == [10, 20, 30]

    def test_parallel_exhausted_retries_raise(self, tmp_path):
        with pytest.raises(ExplorationError):
            parallel_map(_boom, [1, 2], jobs=2, retries=1)


class TestSupervision:
    def test_serial_poison_quarantines_in_slot(self):
        def on_poison(index, item, attempts, reason):
            return {"poisoned": item, "attempts": attempts,
                    "reason": reason}

        health = PoolHealth()
        results = parallel_map(
            lambda v: _boom(v) if v == 2 else v * 2, [1, 2, 3],
            jobs=1, retries=1, on_poison=on_poison, health=health)
        assert results[0] == 2 and results[2] == 6
        assert results[1]["poisoned"] == 2
        assert results[1]["attempts"] == 2
        assert "boom" in results[1]["reason"]
        assert health.poisoned == 1
        assert health.retries == 1

    def test_pool_poison_keeps_batch_mates_alive(self):
        def on_poison(index, item, attempts, reason):
            return ("quarantined", item)

        health = PoolHealth()
        results = parallel_map(_boom, [1, 2], jobs=2, retries=1,
                               on_poison=on_poison, health=health)
        assert results == [("quarantined", 1), ("quarantined", 2)]
        assert health.poisoned == 2

    def test_worker_death_rebuilds_pool_and_recovers(self, tmp_path):
        (tmp_path / "die-1").touch()
        health = PoolHealth()
        results = parallel_map(_die_once,
                               [(v, str(tmp_path)) for v in (1, 2, 3)],
                               jobs=2, retries=2, health=health)
        assert results == [10, 20, 30]
        assert health.crashes >= 1
        assert health.restarts >= 1

    def test_stalled_worker_charged_and_pool_replaced(self, tmp_path):
        (tmp_path / "stall-1").touch()
        health = PoolHealth()
        start = time.monotonic()
        results = parallel_map(_stall_once,
                               [(1, str(tmp_path))],
                               jobs=2, retries=1, timeout=2.0,
                               health=health)
        assert results == [10]
        assert health.stalls == 1
        assert health.restarts >= 1
        assert health.retries == 1
        # The stalled process was terminated, not waited out.
        assert time.monotonic() - start < 30.0

    def test_health_accumulates_across_batches(self):
        health = PoolHealth()
        parallel_map(_boom, [1], jobs=1, retries=1, health=health,
                     on_poison=lambda *args: None)
        parallel_map(_boom, [1], jobs=1, retries=1, health=health,
                     on_poison=lambda *args: None)
        assert health.poisoned == 2
        assert health.retries == 2
        assert health.as_dict()["poisoned"] == 2

    def test_executor_exposes_health(self):
        executor = DSEExecutor(jobs=1)
        points = build_grid(cores=("cv32e40p",), configs=("vanilla",),
                            workloads=("yield_pingpong",), iterations=2)
        executor.run(points)
        assert executor.health.as_dict() == {
            "retries": 0, "crashes": 0, "stalls": 0, "restarts": 0,
            "poisoned": 0}


class TestExecutePoint:
    def test_runs_and_derives_seed(self):
        point = GridPoint("cv32e40p", "SLT", "yield_pingpong",
                          iterations=2, seed=5)
        run = execute_point(point)
        assert run.core == "cv32e40p"
        assert run.config_name == "SLT"
        assert run.seed == derive_point_seed(5, "cv32e40p", "SLT",
                                             "yield_pingpong")
        assert run.latencies


class TestDSEExecutor:
    def test_grid_order_independent_of_jobs(self):
        points = build_grid(cores=("cv32e40p",), configs=("vanilla", "T"),
                            workloads=("yield_pingpong",), iterations=2)
        serial = DSEExecutor(jobs=1).run(points)
        parallel = DSEExecutor(jobs=2).run(points)
        assert list(serial) == points == list(parallel)
        for point in points:
            assert serial[point].latencies == parallel[point].latencies
            assert serial[point].seed == parallel[point].seed

    def test_progress_hook_fires_per_point(self):
        points = build_grid(cores=("cv32e40p",), configs=("vanilla",),
                            workloads=("yield_pingpong",), iterations=2)
        seen = []
        DSEExecutor(progress=lambda p, r, c: seen.append((p, c))).run(points)
        assert seen == [(points[0], False)]

    def test_group_suites_shape(self):
        points = build_grid(cores=("cv32e40p",), configs=("vanilla", "T"),
                            workloads=("yield_pingpong", "sem_signal"),
                            iterations=2)
        runs = DSEExecutor(jobs=1).run(points)
        suites = group_suites(points, runs)
        assert set(suites) == {("cv32e40p", "vanilla"), ("cv32e40p", "T")}
        for suite in suites.values():
            assert [r.workload for r in suite.runs] == \
                ["yield_pingpong", "sem_signal"]
            assert suite.stats.count > 0
