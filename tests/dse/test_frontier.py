"""Pareto dominance, annotations, and metric-vector evaluation."""

import json

import pytest

from repro.dse import (
    DesignPoint,
    annotate_pareto,
    dominates,
    evaluate_grid,
    frontier_dict,
    parse_objectives,
)
from repro.errors import ConfigurationError


def _point(config, latency, area, core="cv32e40p", jitter=0.0):
    return DesignPoint(core=core, config=config, metrics={
        "latency": latency, "jitter": jitter, "area": area,
        "fmax": 0.0, "power": 0.0})


class TestParseObjectives:
    def test_valid(self):
        assert parse_objectives("latency, area") == ("latency", "area")

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown objective"):
            parse_objectives("latency,speed")

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            parse_objectives("latency,latency")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="no objectives"):
            parse_objectives(" , ")


class TestDominance:
    def test_strictly_better_dominates(self):
        assert dominates(_point("a", 10, 1), _point("b", 20, 2),
                         ("latency", "area"))

    def test_tradeoff_does_not_dominate(self):
        fast_big = _point("a", 10, 5)
        slow_small = _point("b", 20, 1)
        assert not dominates(fast_big, slow_small, ("latency", "area"))
        assert not dominates(slow_small, fast_big, ("latency", "area"))

    def test_equal_point_does_not_dominate(self):
        assert not dominates(_point("a", 10, 1), _point("b", 10, 1),
                             ("latency", "area"))


class TestAnnotatePareto:
    def test_frontier_and_dominators(self):
        points = [
            _point("vanilla", 100, 0.0),
            _point("SLT", 40, 3.0),
            _point("S", 80, 1.0),
            _point("slow_big", 90, 2.0),  # dominated by S (and SLT on lat.)
        ]
        annotate_pareto(points, objectives=("latency", "area"))
        verdicts = {p.config: p.dominated_by for p in points}
        assert verdicts["vanilla"] is None
        assert verdicts["SLT"] is None
        assert verdicts["S"] is None
        assert verdicts["slow_big"] == "S"

    def test_latency_only_objective(self):
        points = [_point("vanilla", 100, 0.0), _point("SLT", 40, 3.0)]
        annotate_pareto(points, objectives=("latency",))
        assert points[0].dominated_by == "SLT"
        assert points[1].on_frontier

    def test_cores_are_independent(self):
        points = [
            _point("vanilla", 100, 0.0, core="cv32e40p"),
            _point("vanilla", 10, 0.0, core="cva6"),
        ]
        annotate_pareto(points, objectives=("latency",))
        assert all(p.on_frontier for p in points)

    def test_strongest_dominator_chosen(self):
        points = [
            _point("worst", 100, 9.0),
            _point("good", 50, 5.0),
            _point("best", 40, 4.0),
        ]
        annotate_pareto(points, objectives=("latency", "area"))
        assert points[0].dominated_by == "best"

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError):
            annotate_pareto([_point("a", 1, 1)], objectives=("bogus",))


class TestEvaluateGrid:
    @pytest.fixture(scope="class")
    def design_points(self):
        from repro.harness import sweep

        results = sweep(cores=("cv32e40p",), configs=("vanilla", "SLT"),
                        iterations=2)
        return evaluate_grid(results), results

    def test_metric_vector_complete(self, design_points):
        points, _ = design_points
        assert {p.config for p in points} == {"vanilla", "SLT"}
        for point in points:
            assert set(point.metrics) == \
                {"latency", "jitter", "area", "fmax", "power"}

    def test_metrics_match_models(self, design_points):
        points, results = design_points
        by_config = {p.config: p for p in points}
        assert by_config["vanilla"].metrics["area"] == 0.0
        assert by_config["SLT"].metrics["area"] > 0.0
        assert by_config["SLT"].metrics["latency"] == pytest.approx(
            results[("cv32e40p", "SLT")].stats.mean)
        # mutex_workload activity counters feed the power term.
        assert by_config["SLT"].metrics["power"] > 0.0

    def test_frontier_dict_serialisable(self, design_points):
        points, _ = design_points
        annotate_pareto(points, objectives=("latency", "jitter"))
        payload = frontier_dict(points, ("latency", "jitter"))
        json.dumps(payload)
        assert payload["objectives"] == ["latency", "jitter"]
        assert {p["config"] for p in payload["points"]} == {"vanilla", "SLT"}
        for point in payload["points"]:
            assert point["on_frontier"] == (point["dominated_by"] is None)


class TestFormatFrontier:
    def test_table_marks_every_point(self):
        from repro.analysis import format_frontier

        points = [_point("vanilla", 100, 0.0), _point("SLT", 40, 3.0)]
        annotate_pareto(points, objectives=("latency",))
        text = format_frontier(points, ("latency",))
        assert "non-dominated" in text
        assert "dominated by SLT" in text
        assert "% area" in text
