"""Progress telemetry: runs/s, cache hit rate, ETA formatting."""

import io

from repro.dse import GridPoint, ProgressMeter

POINT = GridPoint("cv32e40p", "SLT", "yield_pingpong", 2, 0)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def _meter(total, clock):
    stream = io.StringIO()
    return ProgressMeter(total, stream=stream, clock=clock), stream


class TestProgressMeter:
    def test_status_line_reports_rate_cache_and_eta(self):
        clock = FakeClock()
        meter, _ = _meter(4, clock)
        clock.now += 1.0
        meter.update(POINT, None, from_cache=False)
        clock.now += 1.0
        meter.update(POINT, None, from_cache=True)
        line = meter.status_line()
        assert "2/4 runs" in line
        assert "1.0 runs/s" in line
        assert "cache 50% hit" in line
        assert "ETA 2s" in line

    def test_eta_unknown_before_first_completion(self):
        meter, _ = _meter(3, FakeClock())
        assert "ETA ?" in meter.status_line()

    def test_writes_to_stream_and_finishes_with_newline(self):
        clock = FakeClock()
        meter, stream = _meter(1, clock)
        clock.now += 2.0
        meter.update(POINT, None, from_cache=False)
        meter.finish()
        output = stream.getvalue()
        assert "1/1 runs" in output
        assert output.endswith("\n")

    def test_disabled_meter_stays_silent(self):
        stream = io.StringIO()
        meter = ProgressMeter(2, stream=stream, enabled=False,
                              clock=FakeClock())
        meter.update(POINT, None, from_cache=False)
        meter.finish()
        assert stream.getvalue() == ""

    def test_long_eta_includes_hours(self):
        clock = FakeClock()
        meter, _ = _meter(7201, clock)
        clock.now += 1.0
        meter.update(POINT, None, from_cache=False)
        assert "ETA 2h00m" in meter.status_line()
