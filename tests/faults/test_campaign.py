"""Campaign determinism and outcome coverage.

The acceptance criteria for the resilience subsystem: a quick seeded
campaign observes all five outcome classes, and repeating it with the
same seed reproduces a byte-identical table.
"""

import pytest

from repro.faults import (
    OUTCOMES,
    CampaignSpec,
    campaign_dict,
    format_campaign,
    run_campaign,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def quick_campaign():
    return run_campaign(CampaignSpec.quick(seed=42))


def test_quick_campaign_covers_all_outcome_classes(quick_campaign):
    assert quick_campaign.outcome_classes() == set(OUTCOMES)


def test_quick_campaign_is_byte_identical_on_repeat(quick_campaign):
    again = run_campaign(CampaignSpec.quick(seed=42))
    assert format_campaign(again) == format_campaign(quick_campaign)
    assert campaign_dict(again) == campaign_dict(quick_campaign)


def test_campaign_counts_shape(quick_campaign):
    counts = quick_campaign.counts()
    assert set(counts) == {("cv32e40p", "vanilla"), ("cv32e40p", "SLT")}
    spec = CampaignSpec.quick()
    per_combo = spec.faults_per_combo + 4  # + targeted probes
    for row in counts.values():
        assert set(row) == set(OUTCOMES)
        assert sum(row.values()) == per_combo * len(spec.workloads)


def test_format_campaign_mentions_seed_and_classes(quick_campaign):
    text = format_campaign(quick_campaign)
    assert "seed 42" in text
    for outcome in OUTCOMES:
        assert outcome in text
    assert "outcome classes observed:" in text


def test_campaign_dict_is_json_ready(quick_campaign):
    import json

    payload = campaign_dict(quick_campaign)
    assert payload["seed"] == 42
    assert payload["outcomes"]
    for entry in payload["outcomes"]:
        assert entry["outcome"] in OUTCOMES
    json.dumps(payload)  # must not raise


def test_golden_runs_recorded(quick_campaign):
    assert all(cycles > 0 for cycles in quick_campaign.golden_cycles.values())
    assert ("cv32e40p", "SLT", "yield_pingpong") in quick_campaign.golden_cycles


def test_different_seed_changes_the_campaign(quick_campaign):
    other = run_campaign(CampaignSpec.quick(seed=7))
    assert campaign_dict(other) != campaign_dict(quick_campaign)
    # Structured hang/crash handling is seed-independent: still no
    # unclassified outcome.
    assert other.outcome_classes() <= set(OUTCOMES)


def test_cli_faults_quick_runs(capsys):
    from repro.cli import main

    assert main(["faults", "--seed", "42", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "seed 42" in out
    assert "outcome classes observed:" in out


def test_parallel_campaign_matches_serial(quick_campaign):
    """--jobs fans injection runs over a pool without changing results."""
    parallel = run_campaign(CampaignSpec.quick(seed=42), jobs=2)
    assert campaign_dict(parallel) == campaign_dict(quick_campaign)
    assert format_campaign(parallel) == format_campaign(quick_campaign)


def test_cli_faults_jobs_flag(capsys):
    from repro.cli import main

    assert main(["faults", "--seed", "42", "--quick", "--jobs", "2"]) == 0
    assert "outcome classes observed:" in capsys.readouterr().out
