"""Hang-proof guard tests, including the livelock acceptance criterion:
a deliberately livelocked workload must terminate via the detector with a
structured SimulationError naming the PC, cycle and recent trace."""

import pytest

from repro.cores import CORE_CLASSES
from repro.cores.system import System
from repro.errors import SimulationError
from repro.faults import ProgressGuard, describe_pending_interrupts
from repro.harness import run_workload
from repro.isa.assembler import assemble
from repro.rtosunit.config import parse_config
from repro.workloads import yield_pingpong

SPIN = "spin:\n    j spin\n"


def _spin_system(config: str = "vanilla") -> System:
    system = System(CORE_CLASSES["cv32e40p"], parse_config(config),
                    tick_period=1 << 30)
    system.load(assemble(SPIN, origin=0))
    return system


def test_livelocked_workload_terminates_with_structured_error():
    system = _spin_system()
    system.core.guard = ProgressGuard(window=2_000)
    with pytest.raises(SimulationError) as excinfo:
        system.run(max_cycles=10_000_000)
    err = excinfo.value
    assert err.kind == "livelock"
    assert err.pc is not None
    assert err.cycle is not None
    assert err.mcause is not None
    message = str(err)
    assert "livelock" in message
    assert f"pc={err.pc:#010x}" in message
    assert f"cycle={err.cycle}" in message
    assert "last trace entries" in message
    # The trace tail renders (cycle, pc) pairs, one per line.
    assert message.count("  cycle ") >= 2
    assert f"pc {err.pc:#010x}" in message


def test_livelock_error_reports_privilege_and_interrupt_state():
    system = _spin_system()
    system.core.guard = ProgressGuard(window=2_000)
    with pytest.raises(SimulationError) as excinfo:
        system.run(max_cycles=10_000_000)
    message = str(excinfo.value)
    assert "privilege=task" in message
    assert "mstatus.MIE=0" in message
    assert "mtimecmp=" in message
    assert "msip=" in message


def test_livelock_fires_long_before_the_cycle_wall():
    system = _spin_system()
    system.core.guard = ProgressGuard(window=2_000)
    with pytest.raises(SimulationError) as excinfo:
        system.run(max_cycles=10_000_000)
    # Detection happens within a few windows, not at the 10M wall.
    assert excinfo.value.cycle < 20_000


def test_guard_cycle_budget_is_structured():
    system = _spin_system()
    system.core.guard = ProgressGuard(window=10 ** 9, cycle_budget=300)
    with pytest.raises(SimulationError) as excinfo:
        system.run(max_cycles=10_000_000)
    err = excinfo.value
    assert err.kind == "cycle-budget"
    assert err.pc is not None
    assert err.cycle is not None and err.cycle > 300
    assert "cycle budget 300 exhausted" in str(err)


def test_run_max_cycles_error_carries_context():
    system = _spin_system()
    with pytest.raises(SimulationError) as excinfo:
        system.run(max_cycles=1_000)
    err = excinfo.value
    assert err.kind == "cycle-budget"
    assert err.pc is not None
    assert err.cycle is not None
    assert "cycle limit 1000 exceeded" in str(err)


class _FakeCSR:
    mie_global = False

    def read(self, addr):
        return 0


class _FakeStats:
    traps = 0


class _FakeCore:
    """Core whose cycle counter is frozen: retires steps at one cycle."""

    def __init__(self):
        self.cycle = 4096
        self.pc = 0x40
        self.stats = _FakeStats()
        self.in_isr = False
        self.csr = _FakeCSR()
        self.clint = None


def test_frozen_time_livelock_detected_by_step_count():
    guard = ProgressGuard(window=500)
    core = _FakeCore()
    with pytest.raises(SimulationError) as excinfo:
        for _ in range(1_000):
            guard.on_step(core)
    err = excinfo.value
    assert err.kind == "livelock"
    assert "simulated time advanced only" in str(err)
    assert err.pc == 0x40


def test_trap_resets_the_watch_window():
    guard = ProgressGuard(window=500)
    core = _FakeCore()
    for _ in range(400):
        guard.on_step(core)
        core.cycle += 1
    core.stats.traps += 1  # kernel is alive: a trap was taken
    for _ in range(400):
        guard.on_step(core)
        core.cycle += 1
    # No exception: each window saw a trap or stayed under the bound.


def test_describe_pending_interrupts_without_clint():
    text = describe_pending_interrupts(_FakeCore())
    assert "no CLINT attached" in text


def test_healthy_workload_passes_under_guard():
    result = run_workload("cv32e40p", parse_config("SLT"),
                          yield_pingpong(4), guard=ProgressGuard())
    assert result.stats.count > 0
