"""Per-kind fault application effects on a live system."""

from repro.cores import CORE_CLASSES
from repro.cores.system import System
from repro.faults import FaultInjector, FaultSpec
from repro.isa import csr as csrmod
from repro.isa.assembler import assemble
from repro.rtosunit.config import parse_config


def _system(config: str = "vanilla") -> System:
    system = System(CORE_CLASSES["cv32e40p"], parse_config(config),
                    tick_period=1000)
    system.load(assemble("spin:\n    j spin\n", origin=0))
    return system


def _inject(system, fault):
    injector = FaultInjector(system, [fault])
    injector.on_step(system.core)
    assert injector.done
    assert len(injector.applied) == 1
    return injector


def test_reg_flip_toggles_one_bit():
    system = _system()
    system.core.regs[5] = 0x100
    _inject(system, FaultSpec("reg_flip", cycle=0, target=5, bit=3))
    assert system.core.regs[5] == 0x108


def test_csr_flip_toggles_mstatus_mie():
    system = _system()
    assert not system.core.csr.mie_global
    _inject(system, FaultSpec("csr_flip", cycle=0, target=0, bit=3))
    assert system.core.csr.mie_global
    assert system.core.csr.read(csrmod.MSTATUS) & (1 << 3)


def test_mem_flip_xors_ram_word():
    system = _system()
    addr = system.layout.data_base
    system.memory.write_word_raw(addr, 0xA5A5_0000)
    _inject(system, FaultSpec("mem_flip", cycle=0, target=addr, bit=16))
    assert system.memory.read_word_raw(addr) == 0xA5A4_0000


def test_mem_flip_out_of_range_target_is_clamped_into_ram():
    system = _system()
    fault = FaultSpec("mem_flip", cycle=0, target=1 << 28, bit=0)
    injector = _inject(system, fault)
    _, _, detail = injector.applied[0]
    assert detail.startswith("[0x")  # applied somewhere inside RAM


def test_irq_drop_pushes_mtimecmp_one_period():
    system = _system()
    before = system.clint.mtimecmp
    _inject(system, FaultSpec("irq_drop", cycle=0))
    assert system.clint.mtimecmp == before + system.clint.tick_period


def test_irq_duplicate_raises_spurious_msip():
    system = _system()
    assert not system.clint.msip
    _inject(system, FaultSpec("irq_duplicate", cycle=0))
    assert system.clint.msip


def test_irq_delay_shifts_mtimecmp():
    system = _system()
    before = system.clint.mtimecmp
    _inject(system, FaultSpec("irq_delay", cycle=0, bit=5))
    assert system.clint.mtimecmp == before + 5 * 64


def test_sched_flip_on_empty_hw_scheduler_is_noop():
    system = _system("SLT")
    injector = _inject(system, FaultSpec("sched_flip", cycle=0, target=3))
    _, _, detail = injector.applied[0]
    assert "no entries" in detail


def test_sched_flip_corrupts_hw_entry_and_resorts():
    system = _system("SLT")
    sched = system.unit.scheduler
    sched.add_ready(1, priority=4)
    sched.add_ready(2, priority=2)
    injector = _inject(system, FaultSpec("sched_flip", cycle=0,
                                         target=0, bit=0))
    _, _, detail = injector.applied[0]
    assert detail.startswith("hw priority")
    # The list stays sorted (hardware resorts after the glitch latches),
    # but one entry's priority changed.
    priorities = [e.priority for e in sched.ready]
    assert priorities == sorted(priorities, reverse=True)
    assert sorted(priorities) != [2, 4]


def test_sched_flip_without_hw_scheduler_falls_back_to_memory():
    system = _system("vanilla")
    symbols = {"ready_lists": system.layout.data_base,
               "delay_list": system.layout.data_base + 0x40}
    injector = FaultInjector(
        system, [FaultSpec("sched_flip", cycle=0, target=2, bit=1)],
        symbols=symbols)
    injector.on_step(system.core)
    _, _, detail = injector.applied[0]
    assert detail.startswith("sw list word")
    addr = system.layout.data_base + 8
    assert system.memory.read_word_raw(addr) == 1 << 1


def test_faults_apply_exactly_once_in_schedule_order():
    system = _system()
    faults = [FaultSpec("reg_flip", cycle=50, target=6, bit=0),
              FaultSpec("reg_flip", cycle=10, target=7, bit=0)]
    injector = FaultInjector(system, faults)
    injector.on_step(system.core)  # cycle 0: nothing due yet
    assert not injector.applied
    system.core.cycle = 60
    injector.on_step(system.core)
    assert [f.cycle for _, f, _ in injector.applied] == [10, 50]
    assert injector.done
    injector.on_step(system.core)  # no re-application
    assert len(injector.applied) == 2
