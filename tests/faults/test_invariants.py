"""Runtime invariant checker: clean on healthy runs, loud on corruption."""

from repro.cores.system import build_system
from repro.faults import InvariantChecker
from repro.kernel.builder import KernelBuilder
from repro.kernel.layout import NODE_NEXT, NODE_SIZE, STACK_CANARY
from repro.rtosunit.config import parse_config
from repro.workloads import workload_by_name


def _build(config_name: str, workload_name: str = "yield_pingpong",
           iterations: int = 4):
    config = parse_config(config_name)
    workload = workload_by_name(workload_name, iterations=iterations)
    builder = KernelBuilder(config=config, objects=workload.objects,
                            tick_period=workload.tick_period)
    program = builder.program()
    system = build_system("cv32e40p", config, layout=builder.layout,
                          tick_period=builder.tick_period,
                          external_events=workload.external_events)
    system.load(program)
    return builder, program, system


def _checker(builder, program, system) -> InvariantChecker:
    return InvariantChecker(system, n_tasks=len(builder.tasks),
                            symbols=program.symbols)


def _step_until(system, predicate, limit: int = 300_000):
    core = system.core
    for _ in range(limit):
        if predicate():
            return
        if core.halted:
            break
        core.step()
    raise AssertionError("predicate never became true")


def test_healthy_hardware_scheduled_run_is_clean():
    builder, program, system = _build("SLT")
    checker = _checker(builder, program, system)
    steps = [0]

    def hook(core):
        steps[0] += 1
        if steps[0] % 512 == 0:
            checker.check()

    system.core.step_hook = hook
    exit_code = system.run(max_cycles=2_000_000)
    checker.check()
    assert exit_code in (0, 42)
    assert checker.violations == []


def test_healthy_software_run_is_clean():
    builder, program, system = _build("vanilla", "delay_periodic")
    checker = _checker(builder, program, system)
    steps = [0]

    def hook(core):
        steps[0] += 1
        if steps[0] % 512 == 0:
            checker.check()

    system.core.step_hook = hook
    exit_code = system.run(max_cycles=2_000_000)
    checker.check()
    assert exit_code in (0, 42)
    assert checker.violations == []


def test_hw_ready_order_corruption_is_detected():
    builder, program, system = _build("SLT")
    checker = _checker(builder, program, system)
    sched = system.unit.scheduler
    sched.add_ready(1, priority=5)
    sched.add_ready(2, priority=2)
    sched.ready[0].priority = 0  # glitch without the hardware resort
    new = checker.check()
    assert any(v.check == "hw-ready-order" for v in new)


def test_hw_delay_order_corruption_is_detected():
    builder, program, system = _build("SLT")
    checker = _checker(builder, program, system)
    sched = system.unit.scheduler
    sched.add_delay(1, priority=2, delay=100)
    sched.add_delay(2, priority=2, delay=200)
    sched.delayed[0].delay = 999
    new = checker.check()
    assert any(v.check == "hw-delay-order" for v in new)


def test_hw_duplicate_and_double_listing_detected():
    builder, program, system = _build("SLT")
    checker = _checker(builder, program, system)
    sched = system.unit.scheduler
    sched.add_ready(1, priority=3)
    sched.add_ready(1, priority=3)
    sched.add_delay(1, priority=3, delay=50)
    checks = {v.check for v in checker.check()}
    assert "hw-duplicate" in checks
    assert "hw-ready-and-delayed" in checks


def test_stack_canary_smash_is_detected():
    builder, program, system = _build("vanilla")
    checker = _checker(builder, program, system)
    layout = system.layout
    addr = layout.stack_base + 1 * layout.stack_words * 4
    assert system.memory.read_word_raw(addr) == STACK_CANARY
    system.memory.flip_bit(addr, 7)
    new = checker.check()
    assert any(v.check == "stack-canary" and "task 1" in v.detail
               for v in new)


def test_sw_list_linkage_corruption_is_detected():
    builder, program, system = _build("vanilla")
    checker = _checker(builder, program, system)
    core = system.core
    # Reach a quiescent point (task context, interrupts enabled): the
    # list walks are gated on it.
    _step_until(system, lambda: not core.in_isr and core.csr.mie_global
                and core.cycle > 500)
    assert checker.check() == []  # sanity: clean before corruption
    header = program.symbols["ready_lists"]  # priority-0 list header
    system.memory.write_word_raw(header + NODE_NEXT, 0xDEAD)
    new = checker.check()
    assert any(v.check == "ready-list-link" for v in new)


def test_sw_delay_order_corruption_is_detected():
    builder, program, system = _build("vanilla", "delay_periodic")
    checker = _checker(builder, program, system)
    core = system.core
    memory = system.memory
    header = program.symbols["delay_list"]

    from repro.kernel.layout import LIST_COUNT, NODE_VALUE

    def quiescent_with_sleepers():
        return (memory.read_word_raw(header + LIST_COUNT) >= 2
                and not core.in_isr and core.csr.mie_global)

    _step_until(system, quiescent_with_sleepers)
    first = memory.read_word_raw(header + NODE_NEXT)
    memory.write_word_raw(first + NODE_VALUE, 0xFFFF_0000)
    new = checker.check()
    assert any(v.check == "delay-order" for v in new)


def test_context_checksum_detects_slot_poisoning():
    builder, program, system = _build("SLT")
    checker = _checker(builder, program, system)
    core = system.core

    # Run until the unit has stored at least one context, poison that
    # saved slot, and let the run continue to the eventual restore.
    _step_until(system, lambda: bool(checker._checksums))
    task_id = next(iter(checker._checksums))
    slot = system.layout.context_region.slot_addr(task_id)
    system.memory.flip_bit(slot + 8, 12)  # a saved callee register word
    try:
        system.run(max_cycles=2_000_000)
    except Exception:
        pass  # the poisoned context may also crash the task; fine
    assert any(v.check == "context-checksum" and f"task {task_id}" in v.detail
               for v in checker.violations)


def test_observer_is_attached_to_the_unit():
    builder, program, system = _build("SLT")
    checker = _checker(builder, program, system)
    assert system.unit.observer is checker
