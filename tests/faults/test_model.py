"""FaultSpec validation and seeded fault generation determinism."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    CSR_TARGETS,
    FAULT_KINDS,
    FaultSpec,
    derive_seed,
    generate_faults,
)
from repro.mem.regions import MemoryLayout


def test_every_kind_constructs():
    for kind in FAULT_KINDS:
        target = 4 if kind == "mem_flip" else 1
        spec = FaultSpec(kind, cycle=1000, target=target, bit=0)
        assert kind in spec.describe()
        assert "@1000" in spec.describe()


@pytest.mark.parametrize("kwargs, fragment", [
    (dict(kind="bitrot", cycle=0), "unknown fault kind"),
    (dict(kind="reg_flip", cycle=-1, target=1), "non-negative"),
    (dict(kind="reg_flip", cycle=0, target=1, bit=32), "outside a 32-bit"),
    (dict(kind="reg_flip", cycle=0, target=0), "not a writable register"),
    (dict(kind="reg_flip", cycle=0, target=32), "not a writable register"),
    (dict(kind="csr_flip", cycle=0, target=len(CSR_TARGETS)),
     "outside CSR_TARGETS"),
    (dict(kind="mem_flip", cycle=0, target=0x1001), "not a word address"),
])
def test_invalid_specs_raise_fault_injection_error(kwargs, fragment):
    with pytest.raises(FaultInjectionError, match=fragment):
        FaultSpec(**kwargs)


def test_derive_seed_is_stable_and_mixes_parts():
    a = derive_seed(42, "cv32e40p", "SLT", "yield_pingpong")
    assert a == derive_seed(42, "cv32e40p", "SLT", "yield_pingpong")
    assert 0 <= a < 1 << 32
    assert a != derive_seed(43, "cv32e40p", "SLT", "yield_pingpong")
    assert a != derive_seed(42, "cv32e40p", "T", "yield_pingpong")


def test_generate_faults_is_deterministic():
    layout = MemoryLayout()
    first = generate_faults(1234, 20, 100_000, layout=layout)
    second = generate_faults(1234, 20, 100_000, layout=layout)
    assert first == second
    other = generate_faults(1235, 20, 100_000, layout=layout)
    assert first != other


def test_generated_faults_are_valid_and_in_horizon():
    layout = MemoryLayout()
    faults = generate_faults(7, 50, 80_000, layout=layout)
    assert len(faults) == 50
    for fault in faults:
        assert fault.kind in FAULT_KINDS
        assert 500 <= fault.cycle < 80_000
        # Constructing the dataclass already re-validated target/bit.


def test_generate_faults_respects_kind_filter():
    faults = generate_faults(7, 10, 10_000, kinds=("reg_flip",))
    assert {f.kind for f in faults} == {"reg_flip"}


def test_generate_faults_rejects_empty_horizon():
    with pytest.raises(FaultInjectionError, match="no room"):
        generate_faults(7, 4, 100)


def test_mem_flip_targets_land_in_interesting_regions():
    layout = MemoryLayout()
    faults = generate_faults(99, 200, 50_000, layout=layout,
                             kinds=("mem_flip",))
    region = layout.context_region
    stack_end = layout.stack_base + layout.max_tasks * layout.stack_words * 4
    for fault in faults:
        addr = fault.target
        assert addr % 4 == 0
        assert (layout.data_base <= addr < layout.data_base + 0x2000
                or layout.stack_base <= addr < stack_end
                or region.base <= addr < region.end)
