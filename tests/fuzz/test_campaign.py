"""Fuzz campaigns: byte-determinism, anomaly thresholds, shrinking."""

import json

import pytest

from repro.fuzz import FuzzSpec, ScenarioSpec, run_fuzz, shrink_scenario
from repro.fuzz.campaign import _JITTER_FLOOR, _anomaly_kind, format_fuzz, \
    fuzz_dict
from repro.harness.metrics import LatencyStats

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def quick_result():
    return run_fuzz(FuzzSpec.quick(seed=7))


class TestDeterminism:
    def test_quick_campaign_byte_identical_on_repeat(self, quick_result):
        again = run_fuzz(FuzzSpec.quick(seed=7))
        first = json.dumps(fuzz_dict(quick_result), sort_keys=True)
        second = json.dumps(fuzz_dict(again), sort_keys=True)
        assert first == second
        assert format_fuzz(again) == format_fuzz(quick_result)

    def test_campaign_covers_every_family_per_cell(self, quick_result):
        spec = quick_result.spec
        assert len(quick_result.outcomes) == (
            len(spec.cores) * len(spec.configs)
            * len(spec.families) * spec.count)
        assert {o.family for o in quick_result.outcomes} == \
            set(spec.families)

    def test_report_has_no_wall_clock_fields(self, quick_result):
        payload = fuzz_dict(quick_result)
        text = json.dumps(payload)
        for banned in ("time", "wall", "date", "stamp"):
            assert banned not in text.lower()

    def test_scenario_names_in_report_round_trip(self, quick_result):
        for outcome in fuzz_dict(quick_result)["outcomes"]:
            spec = ScenarioSpec.parse(outcome["scenario"])
            assert spec.name == outcome["scenario"]


def _stats(maximum, jitter):
    """A LatencyStats with the given max and jitter (= max - min)."""
    return LatencyStats(count=10, mean=60.0, minimum=maximum - jitter,
                        maximum=maximum, median=60.0, stdev=1.0)


class TestAnomalyKinds:
    BASE = _stats(maximum=100, jitter=50)

    def test_within_threshold_is_clean(self):
        assert _anomaly_kind(_stats(110, 55), self.BASE, 1.25) == ""

    def test_latency_break(self):
        assert _anomaly_kind(_stats(130, 50), self.BASE, 1.25) == "latency"

    def test_jitter_break(self):
        assert _anomaly_kind(_stats(100, 80), self.BASE, 1.25) == "jitter"

    def test_both_break(self):
        assert _anomaly_kind(_stats(200, 120), self.BASE,
                             1.25) == "latency+jitter"

    def test_jitter_floor_absorbs_tight_baselines(self):
        # A hardware-scheduled baseline can sit at jitter 1; without the
        # floor every scenario's statistical dust would flag.
        tight = _stats(maximum=100, jitter=1)
        bound = int(_JITTER_FLOOR * 1.25)
        assert _anomaly_kind(_stats(100, bound), tight, 1.25) == ""
        assert _anomaly_kind(_stats(100, bound + 1), tight,
                             1.25) == "jitter"


class TestShrinking:
    SPEC = ScenarioSpec(family="irq_storm", seed=1,
                        knobs=(("bursts", 5), ("burst_len", 4),
                               ("gap", 100)))

    @staticmethod
    def _predicate(candidate):
        values = candidate.values
        return values["gap"] <= 300 and values["bursts"] >= 2

    def test_greedy_shrink_reaches_local_minimum(self):
        result = shrink_scenario(self.SPEC, self._predicate)
        assert result.shrank
        assert result.steps
        values = result.witness.values
        # burst_len is irrelevant to the predicate: jumps to shrink_to.
        assert values["burst_len"] == 1
        # bursts stops at the boundary the predicate defends.
        assert values["bursts"] == 2
        # gap shrinks toward its tame end (1000) but stays anomalous.
        assert 200 <= values["gap"] <= 300
        assert self._predicate(result.witness)

    def test_shrink_is_deterministic(self):
        a = shrink_scenario(self.SPEC, self._predicate)
        b = shrink_scenario(self.SPEC, self._predicate)
        assert a.witness == b.witness
        assert a.evaluations == b.evaluations
        assert a.steps == b.steps

    def test_eval_budget_is_respected(self):
        result = shrink_scenario(self.SPEC, self._predicate, max_evals=3)
        assert result.evaluations <= 3

    def test_raising_predicate_means_anomaly_gone(self):
        def explodes(candidate):
            raise ValueError("simulation failed")

        result = shrink_scenario(self.SPEC, explodes)
        assert not result.shrank
        assert result.witness == self.SPEC

    def test_already_minimal_spec_is_untouched(self):
        minimal = ScenarioSpec(
            family="irq_storm", seed=1,
            knobs=(("bursts", 1), ("burst_len", 1), ("gap", 1000)))
        result = shrink_scenario(minimal, lambda candidate: True)
        assert not result.shrank
        assert result.evaluations == 0
