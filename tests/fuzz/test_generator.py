"""Family generators: determinism, hardware bounds, cross-config runs."""

import pytest

from repro.fuzz import FAMILIES, ScenarioSpec, family_names, sample_scenario
from repro.fuzz.generator import MAX_SCENARIO_SEMS, MAX_SCENARIO_TASKS
from repro.harness import run_workload
from repro.kernel.builder import KernelBuilder
from repro.rtosunit.config import parse_config

VANILLA = parse_config("vanilla")
SLT = parse_config("SLT")
SLTY = parse_config("SLTY")


def _render(workload, config=VANILLA):
    builder = KernelBuilder(config=config, objects=workload.objects,
                            tick_period=workload.tick_period)
    return builder.source()


class TestDeterminism:
    @pytest.mark.parametrize("family", family_names())
    def test_same_spec_renders_identical_source(self, family):
        spec = sample_scenario(family, campaign_seed=7, index=0)
        first = spec.workload(iterations=4)
        second = ScenarioSpec.parse(spec.name).workload(iterations=4)
        assert _render(first) == _render(second)
        assert first.external_events == second.external_events
        assert first.tick_period == second.tick_period
        assert first.max_cycles == second.max_cycles

    def test_different_seed_changes_generated_source(self):
        a = ScenarioSpec(family="queue_mesh", seed=1).workload(iterations=4)
        b = ScenarioSpec(family="queue_mesh", seed=2).workload(iterations=4)
        # Seeded entropy reaches the task bodies (payload seed values).
        assert _render(a) != _render(b)

    def test_irq_storm_events_are_seeded_and_jittered(self):
        spec = ScenarioSpec(family="irq_storm", seed=11)
        events = spec.workload(iterations=5).external_events
        assert events == spec.workload(iterations=5).external_events
        assert len(events) > 0
        assert events == sorted(events)


class TestHardwareBounds:
    @pytest.mark.parametrize("family", family_names())
    def test_worst_case_stays_within_hw_lists(self, family):
        schema = FAMILIES[family].knobs
        maxed = ScenarioSpec(
            family=family, seed=0,
            knobs=tuple((name, knob.hi) for name, knob in schema.items()))
        workload = maxed.workload(iterations=4)
        assert len(workload.objects.tasks) <= MAX_SCENARIO_TASKS
        assert len(workload.objects.semaphores) <= MAX_SCENARIO_SEMS
        for task in workload.objects.tasks:
            assert 0 <= task.priority <= 7


class TestExecution:
    @pytest.mark.parametrize("family", family_names())
    @pytest.mark.parametrize("config", [VANILLA, SLT, SLTY],
                             ids=["vanilla", "SLT", "SLTY"])
    def test_family_runs_with_switches(self, family, config):
        spec = sample_scenario(family, campaign_seed=7, index=0)
        result = run_workload("cv32e40p", config,
                              spec.workload(iterations=4))
        assert result.stats.count > 0
        assert result.switches
        assert all(s.latency > 0 for s in result.switches)

    def test_families_run_on_other_cores(self):
        spec = ScenarioSpec(family="expiry_burst", seed=3)
        for core in ("cva6", "naxriscv"):
            result = run_workload(core, SLT, spec.workload(iterations=4))
            assert result.stats.count > 0


class TestMixedCrit:
    def test_mode_switch_fires_and_suspends(self):
        spec = ScenarioSpec(family="mixed_crit", seed=5,
                            knobs=(("low", 2), ("phase", 2)))
        workload = spec.workload(iterations=4)
        builder = KernelBuilder(config=VANILLA, objects=workload.objects,
                                tick_period=workload.tick_period)
        system = builder.build("cv32e40p")
        system.run(workload.max_cycles)
        # The hi task wrote the criticality-mode flag...
        assert system.memory.read_word_raw(
            builder.program().symbol("hi_mode")) == 1
        # ...and the run still completed (hi reached k_halt) with the
        # low tasks parked in suspend rather than spinning the CPU.
        assert system.switches
