"""Fuzz scenarios as first-class grid dimensions.

A canonical scenario name must behave exactly like ``yield_pingpong``
in every engine that consumes workload names: the workload registry,
DSE sweeps (serial == parallel, cold == warm cache), the
content-addressed cache keys, fault campaigns, and service job
requests.
"""

import pytest

from repro.dse import ResultCache
from repro.dse.cache import point_key
from repro.dse.executor import GridPoint
from repro.errors import KernelError, ServiceError
from repro.faults import CampaignSpec, run_campaign
from repro.harness import sweep, sweep_dict, write_json
from repro.service.request import JobRequest
from repro.workloads import workload_by_name, workload_descriptions

pytestmark = pytest.mark.slow

FUZZ_NAME = "fuzz:mixed_crit:s5:low=2"
GRID = dict(cores=("cv32e40p",), configs=("vanilla", "SLT"), iterations=2,
            workloads=(FUZZ_NAME, "yield_pingpong"), seed=7)


def _export(tmp_path, name, results):
    path = tmp_path / name
    write_json(str(path), sweep_dict(results))
    return path.read_bytes()


class TestWorkloadRegistry:
    def test_fuzz_names_dispatch_through_workload_by_name(self):
        workload = workload_by_name(FUZZ_NAME, iterations=3)
        assert workload.name == FUZZ_NAME
        assert workload.objects.tasks

    def test_bad_fuzz_family_suggests(self):
        with pytest.raises(KernelError, match="did you mean"):
            workload_by_name("fuzz:bogus:s3")

    def test_near_miss_fixed_name_suggests(self):
        with pytest.raises(KernelError, match="yield_pingpong"):
            workload_by_name("yield_pingpon")

    def test_descriptions_list_fuzz_templates(self):
        names = [name for name, _ in workload_descriptions()]
        assert "yield_pingpong" in names
        assert any(name.startswith("fuzz:mixed_crit:") for name in names)


class TestSweepIdentity:
    def test_serial_parallel_byte_identical_with_fuzz_point(self, tmp_path):
        serial = _export(tmp_path, "serial.json", sweep(jobs=1, **GRID))
        parallel = _export(tmp_path, "parallel.json", sweep(jobs=2, **GRID))
        assert serial == parallel

    def test_cold_warm_cache_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = _export(tmp_path, "cold.json", sweep(cache=cache, **GRID))
        assert cache.stats.misses == 4 and cache.stats.hits == 0
        warm_cache = ResultCache(tmp_path / "cache")
        warm = _export(tmp_path, "warm.json", sweep(cache=warm_cache, **GRID))
        assert warm_cache.stats.hits == 4 and warm_cache.stats.misses == 0
        assert cold == warm


class TestCacheKeys:
    POINT = GridPoint(core="cv32e40p", config="SLT", workload=FUZZ_NAME,
                      iterations=3, seed=7)

    def test_point_key_is_stable(self):
        assert point_key(self.POINT) == point_key(self.POINT)

    def test_point_key_tracks_scenario_knobs(self):
        other = GridPoint(core="cv32e40p", config="SLT",
                          workload="fuzz:mixed_crit:s5:low=3",
                          iterations=3, seed=7)
        assert point_key(self.POINT) != point_key(other)

    def test_cache_path_survives_scenario_punctuation(self, tmp_path):
        # ':', '=' and '+' in canonical names must produce usable
        # filenames for the on-disk result cache.
        cache = ResultCache(tmp_path / "cache")
        point = GridPoint(core="cv32e40p", config="SLT",
                          workload="fuzz:irq_storm:s3:burst_len=2+gap=100",
                          iterations=2, seed=7)
        path = cache.path(point)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{}")
        assert path.exists()


class TestFaultCampaigns:
    def test_fuzz_workload_rides_fault_campaign(self):
        spec = CampaignSpec(
            seed=42, cores=("cv32e40p",), configs=("vanilla",),
            workloads=("fuzz:expiry_burst:s3:tasks=2",),
            iterations=3, faults_per_combo=2, targeted=False)
        result = run_campaign(spec)
        assert result.results
        assert all(r.workload == "fuzz:expiry_burst:s3:tasks=2"
                   for r in result.results)


class TestServiceRequests:
    def test_valid_fuzz_request_passes(self):
        request = JobRequest(core="cv32e40p", config="SLT",
                             workload="fuzz:irq_storm:s3:gap=100",
                             iterations=4)
        assert request.validate() is request

    def test_bad_fuzz_scenario_rejected_with_detail(self):
        request = JobRequest(core="cv32e40p", config="SLT",
                             workload="fuzz:bogus:s3")
        with pytest.raises(ServiceError, match="did you mean"):
            request.validate()

    def test_unknown_plain_workload_mentions_fuzz_shape(self):
        request = JobRequest(core="cv32e40p", config="SLT",
                             workload="nope")
        with pytest.raises(ServiceError, match="fuzz:<family>:s<seed>"):
            request.validate()
