"""ScenarioSpec: canonical naming, parsing, validation, sampling."""

import pytest

from repro.errors import KernelError
from repro.fuzz import (
    FAMILIES,
    ScenarioSpec,
    derive_scenario_seed,
    family_names,
    is_fuzz_name,
    sample_scenario,
)


class TestCanonicalNames:
    def test_bare_spec_has_no_knob_tail(self):
        spec = ScenarioSpec(family="irq_storm", seed=42)
        assert spec.name == "fuzz:irq_storm:s42"

    def test_default_valued_knobs_are_omitted(self):
        default = FAMILIES["irq_storm"].knobs["gap"].default
        spec = ScenarioSpec(family="irq_storm", seed=42,
                            knobs=(("gap", default),))
        assert spec.name == "fuzz:irq_storm:s42"

    def test_knobs_serialize_sorted(self):
        spec = ScenarioSpec(family="irq_storm", seed=3,
                            knobs=(("gap", 100), ("bursts", 5)))
        assert spec.name == "fuzz:irq_storm:s3:bursts=5+gap=100"

    @pytest.mark.parametrize("family", family_names())
    def test_round_trip_every_family(self, family):
        spec = sample_scenario(family, campaign_seed=7, index=0)
        assert ScenarioSpec.parse(spec.name) == spec
        # And the name itself is a fixed point.
        assert ScenarioSpec.parse(spec.name).name == spec.name

    def test_is_fuzz_name(self):
        assert is_fuzz_name("fuzz:irq_storm:s1")
        assert not is_fuzz_name("yield_pingpong")
        assert not is_fuzz_name(42)


class TestValidation:
    def test_unknown_family_suggests(self):
        with pytest.raises(KernelError, match="did you mean"):
            ScenarioSpec(family="irq_strom", seed=1)

    def test_negative_seed_rejected(self):
        with pytest.raises(KernelError, match="seed must be >= 0"):
            ScenarioSpec(family="irq_storm", seed=-1)

    def test_unknown_knob_rejected(self):
        with pytest.raises(KernelError, match="unknown knob"):
            ScenarioSpec(family="irq_storm", seed=1, knobs=(("nope", 3),))

    def test_out_of_range_knob_rejected(self):
        hi = FAMILIES["irq_storm"].knobs["bursts"].hi
        with pytest.raises(KernelError, match="outside"):
            ScenarioSpec(family="irq_storm", seed=1,
                         knobs=(("bursts", hi + 1),))

    def test_non_integer_knob_rejected(self):
        with pytest.raises(KernelError, match="must be an integer"):
            ScenarioSpec(family="irq_storm", seed=1, knobs=(("gap", True),))


class TestParsing:
    def test_non_fuzz_name_rejected(self):
        with pytest.raises(KernelError, match="not a fuzz scenario"):
            ScenarioSpec.parse("yield_pingpong")

    def test_malformed_seed_rejected(self):
        with pytest.raises(KernelError, match="malformed scenario seed"):
            ScenarioSpec.parse("fuzz:irq_storm:seven")

    def test_missing_seed_rejected(self):
        with pytest.raises(KernelError, match="malformed"):
            ScenarioSpec.parse("fuzz:irq_storm")

    def test_malformed_knob_rejected(self):
        with pytest.raises(KernelError, match="malformed knob"):
            ScenarioSpec.parse("fuzz:irq_storm:s1:gap")

    def test_non_integer_knob_value_rejected(self):
        with pytest.raises(KernelError, match="integer"):
            ScenarioSpec.parse("fuzz:irq_storm:s1:gap=wide")

    def test_unsorted_input_canonicalizes(self):
        spec = ScenarioSpec.parse("fuzz:irq_storm:s3:gap=100+bursts=5")
        assert spec.name == "fuzz:irq_storm:s3:bursts=5+gap=100"


class TestDerived:
    def test_values_merge_defaults_and_overrides(self):
        spec = ScenarioSpec(family="irq_storm", seed=1, knobs=(("gap", 99),))
        values = spec.values
        assert values["gap"] == 99
        assert values["bursts"] == FAMILIES["irq_storm"].knobs["bursts"].default
        assert set(values) == set(FAMILIES["irq_storm"].knobs)

    def test_with_knob_returns_validated_copy(self):
        spec = ScenarioSpec(family="irq_storm", seed=1)
        assert spec.with_knob("gap", 200).values["gap"] == 200
        with pytest.raises(KernelError):
            spec.with_knob("gap", -5)

    def test_rng_stream_is_reproducible(self):
        spec = ScenarioSpec(family="queue_mesh", seed=9)
        assert [spec.rng().randint(0, 1 << 30) for _ in range(4)] == \
            [spec.rng().randint(0, 1 << 30) for _ in range(4)]


class TestSampling:
    def test_derive_scenario_seed_is_stable_32bit(self):
        a = derive_scenario_seed(7, "irq_storm", 0)
        assert a == derive_scenario_seed(7, "irq_storm", 0)
        assert 0 <= a <= 0xFFFFFFFF
        assert a != derive_scenario_seed(7, "irq_storm", 1)
        assert a != derive_scenario_seed(8, "irq_storm", 0)

    @pytest.mark.parametrize("family", family_names())
    def test_sampled_knobs_within_schema(self, family):
        for index in range(8):
            spec = sample_scenario(family, campaign_seed=7, index=index)
            for name, value in spec.values.items():
                knob = FAMILIES[family].knobs[name]
                assert knob.lo <= value <= knob.hi

    def test_sampling_independent_of_neighbours(self):
        # Slot (seed, family, index) alone determines the scenario —
        # not which other families or counts run in the same campaign.
        assert sample_scenario("prio_chain", 7, 2) == \
            sample_scenario("prio_chain", 7, 2)
        assert sample_scenario("prio_chain", 7, 2) != \
            sample_scenario("prio_chain", 7, 3)

    def test_sampling_unknown_family_suggests(self):
        with pytest.raises(KernelError, match="did you mean"):
            sample_scenario("queue_mes", 7, 0)
