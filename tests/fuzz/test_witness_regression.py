"""Checked-in minimal witnesses from the shipped fuzz campaign.

The default campaign (``python -m repro fuzz --seed 7``) found latency
anomalies on the hardware-scheduled SLT configuration that the fixed
RTOSBench-style suite cannot produce: the suite contains no external
interrupt storms, so SLT's tight worst-case (max 70 cycles, jitter 1
on cv32e40p at 6 iterations) never meets queued CLINT events. The
shrunk witness below — two single-interrupt bursts at the tamest gap —
is the minimal scenario that still breaks the 1.25x latency bound.
These tests pin it as a permanent regression check; see docs/FUZZ.md
for the campaign that produced it.
"""

import pytest

from repro.fuzz import ScenarioSpec
from repro.fuzz.campaign import _anomaly_kind
from repro.harness.experiment import derive_point_seed, run_suite, \
    run_workload
from repro.rtosunit.config import parse_config

pytestmark = pytest.mark.slow

#: Shrunk from fuzz:irq_storm:s3454551465:burst_len=4+gap=278 (campaign
#: seed 7, cv32e40p/SLT: max 168, jitter 100 vs baseline max 70,
#: jitter 1).
WITNESS = "fuzz:irq_storm:s3454551465:burst_len=1+bursts=2+gap=1000"
CAMPAIGN_SEED = 7
ITERATIONS = 6
THRESHOLD = 1.25


@pytest.fixture(scope="module")
def slt_baseline():
    return run_suite("cv32e40p", parse_config("SLT"),
                     iterations=ITERATIONS, seed=CAMPAIGN_SEED).stats


def _run_witness(config):
    spec = ScenarioSpec.parse(WITNESS)
    workload = spec.workload(iterations=ITERATIONS)
    seed = derive_point_seed(CAMPAIGN_SEED, "cv32e40p", config.name,
                             workload.name)
    return run_workload("cv32e40p", config, workload, seed=seed).stats


def test_witness_still_breaks_slt_latency_bound(slt_baseline):
    stats = _run_witness(parse_config("SLT"))
    kind = _anomaly_kind(stats, slt_baseline, THRESHOLD)
    assert "latency" in kind, (
        f"witness no longer anomalous: max={stats.maximum} vs baseline "
        f"max={slt_baseline.maximum} (threshold {THRESHOLD}x)")


def test_fixed_suite_cannot_reproduce_the_anomaly(slt_baseline):
    # The finding is genuinely outside the fixed suite's reach: the
    # baseline aggregate IS the fixed suite, so by construction the
    # witness max exceeds every latency the suite observed.
    stats = _run_witness(parse_config("SLT"))
    assert stats.maximum > THRESHOLD * slt_baseline.maximum


def test_witness_is_reproducible():
    config = parse_config("SLT")
    first = _run_witness(config)
    second = _run_witness(config)
    assert first == second
