"""Checked-in minimal witnesses from the shipped fuzz campaign.

The default campaign (``python -m repro fuzz --seed 7``) found latency
anomalies on the hardware-scheduled SLT configuration that the fixed
RTOSBench-style suite cannot produce: the suite contains no external
interrupt storms, so SLT's tight worst-case (max 70 cycles, jitter 1
on cv32e40p at 6 iterations) never meets queued CLINT events. The
shrunk witness below — two single-interrupt bursts at the tamest gap —
is the minimal scenario that still breaks the 1.25x latency bound.
These tests pin it as a permanent regression check; see docs/FUZZ.md
for the campaign that produced it.
"""

import pytest

from repro.fuzz import ScenarioSpec
from repro.fuzz.campaign import _anomaly_kind
from repro.harness.experiment import derive_point_seed, run_suite, \
    run_workload
from repro.rtosunit.config import parse_config

pytestmark = pytest.mark.slow

#: Shrunk from fuzz:irq_storm:s3454551465:burst_len=4+gap=278 (campaign
#: seed 7, cv32e40p/SLT: max 168, jitter 100 vs baseline max 70,
#: jitter 1).
WITNESS = "fuzz:irq_storm:s3454551465:burst_len=1+bursts=2+gap=1000"
CAMPAIGN_SEED = 7
ITERATIONS = 6
THRESHOLD = 1.25


@pytest.fixture(scope="module")
def slt_baseline():
    return run_suite("cv32e40p", parse_config("SLT"),
                     iterations=ITERATIONS, seed=CAMPAIGN_SEED).stats


def _run_witness(config):
    spec = ScenarioSpec.parse(WITNESS)
    workload = spec.workload(iterations=ITERATIONS)
    seed = derive_point_seed(CAMPAIGN_SEED, "cv32e40p", config.name,
                             workload.name)
    return run_workload("cv32e40p", config, workload, seed=seed).stats


def test_witness_still_breaks_slt_latency_bound(slt_baseline):
    stats = _run_witness(parse_config("SLT"))
    kind = _anomaly_kind(stats, slt_baseline, THRESHOLD)
    assert "latency" in kind, (
        f"witness no longer anomalous: max={stats.maximum} vs baseline "
        f"max={slt_baseline.maximum} (threshold {THRESHOLD}x)")


def test_fixed_suite_cannot_reproduce_the_anomaly(slt_baseline):
    # The finding is genuinely outside the fixed suite's reach: the
    # baseline aggregate IS the fixed suite, so by construction the
    # witness max exceeds every latency the suite observed.
    stats = _run_witness(parse_config("SLT"))
    assert stats.maximum > THRESHOLD * slt_baseline.maximum


def test_witness_is_reproducible():
    config = parse_config("SLT")
    first = _run_witness(config)
    second = _run_witness(config)
    assert first == second


class TestWitnessAcrossPersonalities:
    """Which kernel personalities can reproduce the SLT anomaly.

    The anomaly is a property of the *hardware-scheduled* SLT
    configuration meeting queued CLINT events. The alternative
    personalities are software schedulers, so SLT itself is outside
    their design space — the anomaly is freertos-only by construction.
    The storm scenario still runs under ``scm`` (pinned below);
    ``echronos`` cannot execute it at all because the scenario's
    background task never yields and cooperative scheduling starves the
    handler until the cycle budget runs out.
    """

    def test_slt_is_freertos_only(self):
        from repro.errors import ConfigurationError

        for personality in ("scm", "echronos"):
            with pytest.raises(ConfigurationError,
                               match="software scheduler"):
                parse_config(f"SLT@{personality}")

    def test_scm_runs_the_storm_reproducibly(self):
        config = parse_config("vanilla@scm")
        first = _run_witness(config)
        assert first == _run_witness(config)
        assert first.count == 2  # both bursts handled

    def test_scm_tracks_software_baseline_not_the_anomaly(self):
        # Under software scheduling the storm costs full-kernel entry
        # latency for every personality; scm's constant-time resolver
        # keeps it at or below the freertos software path, nowhere near
        # SLT's anomalous blow-up relative to its own tight baseline.
        freertos = _run_witness(parse_config("vanilla"))
        scm = _run_witness(parse_config("vanilla@scm"))
        assert scm.maximum <= freertos.maximum

    def test_echronos_starves_on_the_storm(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="cycle limit"):
            _run_witness(parse_config("vanilla@echronos"))
