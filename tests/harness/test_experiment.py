"""Experiment drivers: run results, suites, sweeps."""

import pytest

from repro.errors import SimulationError
from repro.harness import run_suite, run_workload, sweep
from repro.rtosunit.config import parse_config
from repro.workloads import yield_pingpong


class TestRunWorkload:
    def test_result_fields(self):
        result = run_workload("cv32e40p", parse_config("vanilla"),
                              yield_pingpong(4))
        assert result.core == "cv32e40p"
        assert result.config_name == "vanilla"
        assert result.workload == "yield_pingpong"
        assert result.cycles > 0
        assert result.instret > 0
        assert result.latencies
        assert result.unit_stats is None  # vanilla has no unit

    def test_unit_stats_present_for_accelerated(self):
        result = run_workload("cv32e40p", parse_config("SLT"),
                              yield_pingpong(4))
        assert result.unit_stats is not None
        assert result.unit_stats.words_stored > 0

    def test_warmup_discarded(self):
        workload = yield_pingpong(4)
        result = run_workload("cv32e40p", parse_config("vanilla"), workload)
        full = yield_pingpong(4)
        full.warmup_switches = 0
        result_full = run_workload("cv32e40p", parse_config("vanilla"), full)
        assert result_full.stats.count == \
            result.stats.count + workload.warmup_switches


class TestRunSuite:
    def test_suite_aggregates_all_workloads(self):
        suite = run_suite("cv32e40p", parse_config("vanilla"), iterations=3)
        assert len(suite.runs) == 5
        assert suite.stats.count == sum(r.stats.count for r in suite.runs)

    def test_run_named(self):
        suite = run_suite("cv32e40p", parse_config("vanilla"), iterations=3)
        assert suite.run_named("mutex_workload").workload == "mutex_workload"
        with pytest.raises(SimulationError):
            suite.run_named("bogus")

    def test_custom_workload_selection(self):
        suite = run_suite("cv32e40p", parse_config("vanilla"), iterations=3,
                          workloads=(yield_pingpong,))
        assert len(suite.runs) == 1


class TestSweep:
    def test_sweep_covers_grid(self):
        results = sweep(cores=("cv32e40p",), configs=("vanilla", "SLT"),
                        iterations=2, workloads=(yield_pingpong,))
        assert set(results) == {("cv32e40p", "vanilla"),
                                ("cv32e40p", "SLT")}

    def test_sweep_results_are_usable(self):
        results = sweep(cores=("cv32e40p",), configs=("vanilla", "T"),
                        iterations=2, workloads=(yield_pingpong,))
        assert results[("cv32e40p", "T")].stats.mean < \
            results[("cv32e40p", "vanilla")].stats.mean
