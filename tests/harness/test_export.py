"""JSON export of results."""

import json

from repro.asic import AreaModel, FrequencyModel, PowerModel
from repro.harness import run_suite, run_workload
from repro.harness.export import (
    area_dict,
    fmax_dict,
    power_dict,
    run_dict,
    suite_dict,
    sweep_dict,
    write_json,
)
from repro.rtosunit.config import parse_config
from repro.workloads import yield_pingpong


class TestRunExport:
    def test_run_dict_fields(self):
        run = run_workload("cv32e40p", parse_config("SLT"),
                           yield_pingpong(3))
        payload = run_dict(run)
        assert payload["core"] == "cv32e40p"
        assert payload["config"] == "SLT"
        assert payload["stats"]["jitter"] == run.stats.jitter
        assert payload["latencies"] == run.latencies
        assert payload["unit"]["words_stored"] > 0

    def test_vanilla_has_no_unit_section(self):
        run = run_workload("cv32e40p", parse_config("vanilla"),
                           yield_pingpong(3))
        assert "unit" not in run_dict(run)

    def test_everything_is_json_serialisable(self):
        suite = run_suite("cv32e40p", parse_config("T"), iterations=2,
                          workloads=(yield_pingpong,))
        json.dumps(suite_dict(suite))
        json.dumps(sweep_dict({("cv32e40p", "T"): suite}))


class TestFigureExports:
    def test_area(self):
        reports = AreaModel().figure10(cores=("cva6",),
                                       configs=("vanilla", "S"))
        payload = area_dict(reports)
        assert len(payload["points"]) == 2
        json.dumps(payload)

    def test_fmax(self):
        reports = FrequencyModel().figure11(cores=("cv32e40p",),
                                            configs=("vanilla", "SLT"))
        payload = fmax_dict(reports)
        assert payload["points"][1]["drop_percent"] > 0
        json.dumps(payload)

    def test_power(self):
        model = PowerModel()
        reports = {("cv32e40p", "SLT"): model.report(
            "cv32e40p", parse_config("SLT"))}
        payload = power_dict(reports)
        assert payload["points"][0]["total_mw"] > 0


class TestWriteJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.json"
        write_json(str(path), {"a": [1, 2, 3]})
        assert json.loads(path.read_text()) == {"a": [1, 2, 3]}

    def test_cli_json_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "fig10.json"
        assert main(["fig10", "--cores", "cv32e40p",
                     "--configs", "vanilla,SLT",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert {p["config"] for p in data["points"]} == {"vanilla", "SLT"}


class TestLoadInverses:
    """load_run/load_suite/load_sweep are exact inverses of the dumpers."""

    def test_run_round_trip_is_exact(self):
        from repro.harness.export import load_run

        run = run_workload("cv32e40p", parse_config("SLT"),
                           yield_pingpong(3), seed=11)
        payload = run_dict(run)
        rebuilt = load_run(payload)
        assert run_dict(rebuilt) == payload
        assert rebuilt.seed == 11
        assert rebuilt.core_stats is None  # dropped by design
        assert rebuilt.stats.jitter == run.stats.jitter
        assert [s.trigger_cycle for s in rebuilt.switches] == \
            [s.trigger_cycle for s in run.switches]

    def test_vanilla_run_round_trip(self):
        from repro.harness.export import load_run

        run = run_workload("cv32e40p", parse_config("vanilla"),
                           yield_pingpong(3))
        rebuilt = load_run(run_dict(run))
        assert rebuilt.unit_stats is None
        assert run_dict(rebuilt) == run_dict(run)

    def test_sweep_round_trip_through_json(self, tmp_path):
        from repro.harness import load_sweep, sweep

        results = sweep(cores=("cv32e40p",), configs=("vanilla", "T"),
                        iterations=2, workloads=(yield_pingpong,), seed=3)
        path = tmp_path / "sweep.json"
        write_json(str(path), sweep_dict(results))
        loaded = load_sweep(json.loads(path.read_text()))
        assert list(loaded) == list(results)
        again = tmp_path / "again.json"
        write_json(str(again), sweep_dict(loaded))
        assert path.read_bytes() == again.read_bytes()

    def test_schema_tag_present(self):
        suite = run_suite("cv32e40p", parse_config("T"), iterations=2,
                          workloads=(yield_pingpong,))
        payload = sweep_dict({("cv32e40p", "T"): suite})
        assert payload["schema"] == 2
