"""Latency statistics and clustering."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.harness.metrics import Clusters, LatencyStats


class TestLatencyStats:
    def test_basic(self):
        stats = LatencyStats.from_samples([10, 20, 30])
        assert stats.count == 3
        assert stats.mean == 20
        assert stats.minimum == 10
        assert stats.maximum == 30
        assert stats.jitter == 20
        assert stats.median == 20

    def test_single_sample(self):
        stats = LatencyStats.from_samples([7])
        assert stats.jitter == 0
        assert stats.stdev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            LatencyStats.from_samples([])

    def test_empty_is_clear_value_error(self):
        # Regression: an empty distribution must surface as a clear
        # "no samples" ValueError, never a bare IndexError or
        # ZeroDivisionError — the job service maps empty-result jobs to
        # a structured error and relies on this.
        with pytest.raises(ValueError, match="no samples"):
            LatencyStats.from_samples([])

    def test_reduction(self):
        baseline = LatencyStats.from_samples([100])
        faster = LatencyStats.from_samples([40])
        assert faster.reduction_vs(baseline) == pytest.approx(0.6)

    def test_reduction_against_zero(self):
        zero = LatencyStats.from_samples([0])
        with pytest.raises(AnalysisError):
            zero.reduction_vs(zero)

    @given(samples=st.lists(st.integers(0, 10_000), min_size=1,
                            max_size=200))
    def test_invariants(self, samples):
        stats = LatencyStats.from_samples(samples)
        assert stats.minimum <= stats.median <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.jitter == stats.maximum - stats.minimum
        assert stats.count == len(samples)


class TestClusters:
    def test_bimodal_detection(self):
        clusters = Clusters.split([10, 11, 12, 50, 51, 52])
        assert clusters.is_bimodal
        assert sorted(clusters.low) == [10, 11, 12]
        assert sorted(clusters.high) == [50, 51, 52]

    def test_unimodal_not_bimodal(self):
        clusters = Clusters.split([10, 11, 12, 13])
        assert not clusters.is_bimodal

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            Clusters.split([])

    def test_empty_is_clear_value_error(self):
        with pytest.raises(ValueError, match="no samples"):
            Clusters.split([])

    @given(samples=st.lists(st.integers(0, 1000), min_size=1, max_size=100))
    def test_partition_is_total(self, samples):
        clusters = Clusters.split(samples)
        assert sorted(clusters.low + clusters.high) == sorted(samples)


class TestLatencyBreakdown:
    def _switches(self):
        from repro.cores.system import SwitchRecord

        return [SwitchRecord(10, 14, 80), SwitchRecord(100, 105, 170)]

    def test_decomposition(self):
        from repro.harness.metrics import LatencyBreakdown

        breakdown = LatencyBreakdown.from_switches(self._switches())
        assert breakdown.response.minimum == 4
        assert breakdown.response.maximum == 5
        assert breakdown.isr.minimum == 65
        assert breakdown.total.minimum == 70

    def test_parts_sum_to_total(self):
        from repro.harness.metrics import LatencyBreakdown

        breakdown = LatencyBreakdown.from_switches(self._switches())
        assert breakdown.response.mean + breakdown.isr.mean == \
            breakdown.total.mean

    def test_empty_switch_list_is_clear_value_error(self):
        from repro.harness.metrics import LatencyBreakdown

        with pytest.raises(ValueError, match="no samples"):
            LatencyBreakdown.from_switches([])

    def test_slt_isr_part_is_constant(self):
        """The headline, measured precisely: under (SLT) the take->mret
        path has zero variance; all residual jitter is response-side."""
        from repro.harness import run_suite
        from repro.rtosunit.config import parse_config

        breakdown = run_suite("cv32e40p", parse_config("SLT"),
                              iterations=4).breakdown
        assert breakdown.isr.jitter == 0
        assert breakdown.response.jitter <= 2


class TestEdgeCases:
    """Degenerate distributions that the DSE grid can legitimately hit."""

    def test_single_sample_stdev_and_median(self):
        stats = LatencyStats.from_samples([42])
        assert stats.stdev == 0.0
        assert stats.median == 42
        assert stats.mean == 42.0
        assert stats.count == 1

    def test_two_identical_samples_have_zero_stdev(self):
        stats = LatencyStats.from_samples([42, 42])
        assert stats.stdev == 0.0
        assert stats.jitter == 0

    def test_split_constant_distribution(self):
        """All samples at the pivot land in `low`; never bimodal."""
        clusters = Clusters.split([30, 30, 30, 30])
        assert clusters.low == [30, 30, 30, 30]
        assert clusters.high == []
        assert not clusters.is_bimodal

    def test_split_single_sample(self):
        clusters = Clusters.split([7])
        assert clusters.low == [7]
        assert not clusters.is_bimodal

    def test_breakdown_from_out_of_order_switches(self):
        """from_switches must not assume chronological record order."""
        from repro.cores.system import SwitchRecord
        from repro.harness.metrics import LatencyBreakdown

        late = SwitchRecord(100, 105, 170)
        early = SwitchRecord(10, 14, 80)
        shuffled = LatencyBreakdown.from_switches([late, early])
        ordered = LatencyBreakdown.from_switches([early, late])
        for part in ("response", "isr", "total"):
            assert getattr(shuffled, part) == getattr(ordered, part)
        assert shuffled.response.mean + shuffled.isr.mean == \
            shuffled.total.mean
