"""Seed derivation must depend on the grid position, not execution order.

Regression for a subtle bug: the sweep's in-process fallback used to
re-invoke workload factories for every (core, config) cell. A factory
is not required to be pure — if its workload names encode a counter,
each cell silently got a *different* workload name and therefore a
different :func:`derive_point_seed`, breaking the content-addressed DSE
cache and serial/parallel byte-identity. Factories are now resolved
exactly once per suite/sweep.
"""

import dataclasses
import itertools

from repro.harness.experiment import derive_point_seed, run_suite, sweep
from repro.workloads import yield_pingpong

SEED = 7


def _counting_factory():
    """An impure factory: every call yields a differently-named workload."""
    counter = itertools.count()

    def factory(iterations):
        workload = yield_pingpong(iterations=2)
        return dataclasses.replace(workload,
                                   name=f"adhoc{next(counter)}")

    return factory


def test_sweep_resolves_adhoc_factories_once():
    grid = sweep(cores=("cv32e40p", "cva6"), configs=("vanilla", "S"),
                 iterations=2, workloads=[_counting_factory()], seed=SEED)
    names = {run.workload
             for suite in grid.values() for run in suite.runs}
    assert names == {"adhoc0"}, (
        "cells saw different workload instances: factory re-invoked per "
        f"(core, config) cell — got names {sorted(names)}")
    for (core, config_name), suite in grid.items():
        for run in suite.runs:
            assert run.seed == derive_point_seed(SEED, core, config_name,
                                                 "adhoc0")


def test_run_suite_pins_seeds_for_prebuilt_workloads():
    workload = dataclasses.replace(yield_pingpong(iterations=2),
                                   name="pinned")
    suite = run_suite("cv32e40p", _config("SLT"), iterations=2,
                      workloads=[workload], seed=SEED)
    assert [run.seed for run in suite.runs] == [
        derive_point_seed(SEED, "cv32e40p", "SLT", "pinned")]


def test_run_suite_accepts_mixed_factories_and_instances():
    prebuilt = dataclasses.replace(yield_pingpong(iterations=2),
                                   name="prebuilt")
    suite = run_suite("cv32e40p", _config("vanilla"), iterations=2,
                      workloads=[yield_pingpong, prebuilt], seed=SEED)
    assert [run.workload for run in suite.runs] == [
        yield_pingpong(iterations=2).name, "prebuilt"]


def _config(name):
    from repro.rtosunit.config import parse_config

    return parse_config(name)
