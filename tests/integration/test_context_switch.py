"""End-to-end context-switch correctness on every core × configuration.

The register-preservation task fills all callee- and caller-saved
registers that belong to a task context with distinct values, yields many
times, and verifies every register after every switch — exercising the
full save/restore path (software frames, hardware store FSM, restore FSM,
dirty bits, load omission, and preloading) with real interleavings.
"""

import pytest

from repro.kernel.tasks import KernelObjects, TaskSpec
from tests.conftest import ALL_CORES, KEY_CONFIGS, build_and_run

# Registers checked across yields. k_yield clobbers only t0/t1 (and ra is
# saved around the call), so everything else in the context must survive.
_CHECKED = ["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
            "s10", "s11", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
            "t3", "t4", "t5", "t6"]


def _preservation_body(name: str, seed: int, rounds: int,
                       halts: bool) -> str:
    lines = [f"task_{name}:"]
    for index, reg in enumerate(_CHECKED):
        lines.append(f"    li   {reg}, {seed + index * 17}")
    lines.append(f"    li   a0, {rounds}")
    lines.append(f"{name}_loop:")
    lines.append("    mv   t2, a0")
    lines.append("    jal  k_yield")
    lines.append("    mv   a0, t2")  # t2 is context-saved too
    for index, reg in enumerate(_CHECKED):
        lines.append(f"    li   t0, {seed + index * 17}")
        lines.append(f"    bne  {reg}, t0, {name}_fail")
    lines.append("    addi a0, a0, -1")
    lines.append(f"    bnez a0, {name}_loop")
    if halts:
        lines.append("    li   a0, 0")
        lines.append("    jal  k_halt")
    else:
        lines.append(f"{name}_idle:")
        lines.append("    jal  k_yield")
        lines.append(f"    j    {name}_idle")
    lines.append(f"{name}_fail:")
    lines.append("    li   a0, 0xBAD")
    lines.append("    jal  k_halt")
    return "\n".join(lines) + "\n"


def preservation_objects(rounds: int = 8) -> KernelObjects:
    return KernelObjects(tasks=[
        TaskSpec("p1", _preservation_body("p1", 0x100, rounds, True),
                 priority=2),
        TaskSpec("p2", _preservation_body("p2", 0x9000, rounds, False),
                 priority=2),
    ])


class TestRegisterPreservation:
    @pytest.mark.parametrize("core", ALL_CORES)
    @pytest.mark.parametrize("config", KEY_CONFIGS)
    def test_registers_survive_switches(self, core, config):
        system = build_and_run(core, config, preservation_objects())
        assert system.core.stats.traps >= 16

    @pytest.mark.parametrize("config", ("SD", "SDT", "SDLOT"))
    def test_dirty_bit_configs_preserve_registers(self, config):
        system = build_and_run("cv32e40p", config, preservation_objects())
        assert system.unit.stats.dirty_words_skipped > 0

    def test_preservation_with_timer_preemption(self):
        """A small tick period forces timer preemptions mid-check."""
        system = build_and_run("cv32e40p", "vanilla",
                               preservation_objects(rounds=12),
                               tick_period=300)
        timer_traps = system.core.stats.traps - system.core.stats.mrets
        assert system.core.stats.traps > 24  # yields plus preemptions

    @pytest.mark.parametrize("config", ("S", "SLT", "SPLIT"))
    def test_preservation_under_preemption_hw(self, config):
        build_and_run("cv32e40p", config, preservation_objects(rounds=12),
                      tick_period=300)


class TestSwitchMechanics:
    @pytest.mark.parametrize("config", KEY_CONFIGS)
    def test_pingpong_alternation(self, config, pingpong_objects):
        """Equal-priority tasks alternate in round-robin order."""
        system = build_and_run("cv32e40p", config, pingpong_objects)
        # Task a yields 6 times and needs b to yield back each time:
        # at least 12 software-interrupt switches.
        assert len(system.switches) >= 12

    @pytest.mark.parametrize("config", ("vanilla", "SL", "SLT"))
    def test_store_configs_populate_context_region(self, config):
        system = build_and_run("cv32e40p", config,
                               preservation_objects())
        if system.unit is not None and system.config.store:
            assert system.unit.stats.words_stored > 0

    def test_load_omission_triggers_when_same_task_resumes(self):
        """A lone runnable task preempted by the timer resumes itself."""
        body = """\
task_solo:
    li   s0, 2000
solo_loop:
    addi s0, s0, -1
    bnez s0, solo_loop
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(tasks=[TaskSpec("solo", body, priority=2)])
        system = build_and_run("cv32e40p", "SDLOT", objects,
                               tick_period=500, max_cycles=1_000_000)
        assert system.unit.stats.loads_omitted > 0

    def test_preload_hits_when_tasks_run_long_enough(self):
        """Preloading needs idle port cycles between switches (§4.7):
        31 words must trickle in before the next interrupt."""
        body = """\
task_{n}:
    li   s1, {rounds}
{n}_loop:
    li   s0, 60
{n}_work:
    addi s0, s0, -1
    bnez s0, {n}_work
    jal  k_yield
    addi s1, s1, -1
    bnez s1, {n}_loop
{n}_end:
{end}
"""
        objects = KernelObjects(tasks=[
            TaskSpec("w1", body.format(n="w1", rounds=8,
                                       end="    li   a0, 0\n"
                                           "    jal  k_halt\n"),
                     priority=2),
            TaskSpec("w2", body.format(n="w2", rounds=99,
                                       end="    j    task_w2\n"),
                     priority=2),
        ])
        system = build_and_run("cv32e40p", "SPLIT", objects)
        assert system.unit.stats.preload_hits > 0

    def test_preload_misses_in_tight_yield_loop(self, pingpong_objects):
        """Back-to-back yields leave no time to preload 31 words; the
        speculation is discarded, matching (SLT) behaviour."""
        system = build_and_run("cv32e40p", "SPLIT", pingpong_objects)
        assert system.unit.stats.preload_hits == 0

    def test_hw_scheduler_round_robin_matches_switch_count(
            self, pingpong_objects):
        system = build_and_run("cv32e40p", "SLT", pingpong_objects)
        assert system.unit.stats.sched_ops >= len(system.switches)
