"""Configuration equivalence: acceleration must not change semantics.

The RTOSUnit changes *when* things happen, never *what* happens. Every
configuration must produce the same task-level behaviour — same console
output, same final memory results — on every core.
"""

import pytest

from repro.kernel.tasks import KernelObjects, Semaphore, TaskSpec
from tests.conftest import ALL_CORES, KEY_CONFIGS, build_and_run


def _trace_objects() -> KernelObjects:
    """Three tasks interleaving prints through yields and a semaphore."""
    t_a = """\
task_a:
    li   s0, 3
a_loop:
    li   a0, 'a'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
    la   a0, sem_hand
    jal  k_sem_give
    jal  k_yield
    addi s0, s0, -1
    bnez s0, a_loop
    li   a0, 4
    jal  k_delay
    li   a0, 0
    jal  k_halt
"""
    t_b = """\
task_b:
b_loop:
    la   a0, sem_hand
    jal  k_sem_take
    li   a0, 'b'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
    j    b_loop
"""
    t_c = """\
task_c:
c_loop:
    li   a0, 1
    jal  k_delay
    li   a0, 'c'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
    j    c_loop
"""
    return KernelObjects(
        tasks=[TaskSpec("a", t_a, priority=2),
               TaskSpec("b", t_b, priority=3),
               TaskSpec("c", t_c, priority=2)],
        semaphores=[Semaphore("hand", initial=0)])


class TestCrossConfigEquivalence:
    @pytest.mark.parametrize("core", ALL_CORES)
    def test_same_console_output_across_configs(self, core):
        outputs = {}
        for config in KEY_CONFIGS:
            system = build_and_run(core, config, _trace_objects(),
                                   tick_period=4000,
                                   max_cycles=10_000_000)
            outputs[config] = system.console_text
        reference = outputs["vanilla"]
        assert reference  # the workload really printed something
        for config, text in outputs.items():
            assert text == reference, (
                f"{core}/{config} diverged: {text!r} != {reference!r}")

    def test_same_output_across_cores_vanilla(self):
        outputs = {
            core: build_and_run(core, "vanilla", _trace_objects(),
                                tick_period=4000,
                                max_cycles=10_000_000).console_text
            for core in ALL_CORES
        }
        assert len(set(outputs.values())) == 1


class TestTimingDiffersSemanticsDont:
    def test_accelerated_config_is_faster_but_equivalent(self):
        vanilla = build_and_run("cv32e40p", "vanilla", _trace_objects(),
                                tick_period=4000, max_cycles=10_000_000)
        slt = build_and_run("cv32e40p", "SLT", _trace_objects(),
                            tick_period=4000, max_cycles=10_000_000)
        assert slt.console_text == vanilla.console_text
        slt_lat = [s.latency for s in slt.switches]
        van_lat = [s.latency for s in vanilla.switches]
        assert sum(slt_lat) / len(slt_lat) < sum(van_lat) / len(van_lat)
