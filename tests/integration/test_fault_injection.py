"""Failure injection: prove the harness *detects* save/restore faults.

A reproduction whose tests cannot catch a broken context switch proves
nothing. These tests inject faults — corrupted context memory, a store
FSM that drops a register — and assert the register-preservation
workload actually fails, i.e. the test sensitivity is real. A final
determinism test pins the whole simulation as bit-reproducible.
"""

import pytest

from repro.harness import run_suite, run_workload
from repro.kernel.builder import KernelBuilder
from repro.rtosunit.config import parse_config
from repro.rtosunit.unit import RTOSUnit
from repro.workloads import yield_pingpong
from tests.integration.test_context_switch import preservation_objects


def _build_preservation(config_name: str):
    builder = KernelBuilder(config=parse_config(config_name),
                            objects=preservation_objects(rounds=10),
                            tick_period=5000)
    return builder, builder.build("cv32e40p")


def _run_until_switches(system, count: int, limit: int = 1_000_000):
    while len(system.core.switch_events) < count and not system.core.halted:
        if system.core.cycle > limit:
            raise AssertionError("never reached the target switch count")
        system.core.step()


class TestContextCorruptionDetected:
    @pytest.mark.parametrize("config", ("SL", "SLT"))
    def test_poisoned_context_slot_fails_preservation(self, config):
        """Flipping a saved register in the context region must surface
        as a preservation failure (exit 0xBAD), not pass silently."""
        from repro.mem.regions import CONTEXT_REG_ORDER

        builder, system = _build_preservation(config)
        _run_until_switches(system, 4)
        # Poison a *checked* register (s3) in every context slot, so the
        # fault surfaces as a controlled preservation failure rather
        # than a wild jump.
        region = builder.layout.context_region
        offset = 4 * CONTEXT_REG_ORDER.index(19)  # s3
        for task_id in range(3):
            addr = region.slot_addr(task_id) + offset
            system.memory.write_word_raw(
                addr, system.memory.read_word_raw(addr) ^ 0xFFFF)
        exit_code = system.run(max_cycles=3_000_000)
        assert exit_code == 0xBAD

    def test_poisoned_stack_frame_fails_preservation_vanilla(self):
        builder, system = _build_preservation("vanilla")
        _run_until_switches(system, 4)
        program = builder.program()
        # Corrupt the suspended task's frame through its TCB.
        current = system.memory.read_word_raw(
            program.symbols["current_tcb"])
        for symbol in ("tcb_p1", "tcb_p2"):
            tcb = program.symbols[symbol]
            if tcb == current:
                continue  # the running task's frame is stale; skip it
            frame = system.memory.read_word_raw(tcb)  # pxTopOfStack
            value = system.memory.read_word_raw(frame + 12 * 4)
            system.memory.write_word_raw(frame + 12 * 4, value ^ 0xA5A5)
        exit_code = system.run(max_cycles=3_000_000)
        assert exit_code == 0xBAD


class TestStoreFSMFaultDetected:
    def test_dropped_register_store_fails_preservation(self, monkeypatch):
        """A store FSM that skips one register (an off-by-one a real RTL
        bug could introduce) must be caught by the preservation test."""
        original = RTOSUnit._kick_store

        def faulty_kick(self, cycle):
            original(self, cycle)
            # Undo one register's store: zero s3's slot word.
            from repro.mem.regions import CONTEXT_REG_ORDER

            slot = self.region.slot_addr(self.current_task_id)
            index = CONTEXT_REG_ORDER.index(19)  # s3
            self.memory.write_word_raw(slot + 4 * index, 0)

        monkeypatch.setattr(RTOSUnit, "_kick_store", faulty_kick)
        builder, system = _build_preservation("SLT")
        exit_code = system.run(max_cycles=3_000_000)
        assert exit_code == 0xBAD

    def test_unfaulted_baseline_passes(self):
        _, system = _build_preservation("SLT")
        assert system.run(max_cycles=3_000_000) == 0


class TestDeterminism:
    def test_identical_runs_produce_identical_latencies(self):
        first = run_workload("cv32e40p", parse_config("SPLIT"),
                             yield_pingpong(8))
        second = run_workload("cv32e40p", parse_config("SPLIT"),
                              yield_pingpong(8))
        assert first.latencies == second.latencies
        assert first.cycles == second.cycles

    def test_suite_statistics_reproducible(self):
        stats_a = run_suite("naxriscv", parse_config("SLT"),
                            iterations=3).stats
        stats_b = run_suite("naxriscv", parse_config("SLT"),
                            iterations=3).stats
        assert stats_a == stats_b
