"""Property-based cross-configuration equivalence.

Random task programs built from yields, register arithmetic, prints and
compute loops must produce byte-identical console output under every
RTOSUnit configuration: the accelerator changes *when*, never *what*.
Random register traffic also stresses the save/restore paths (dirty
bits, preloading) far beyond the hand-written tests.

Blocking primitives and timer preemption are deliberately excluded here:
their interleavings legitimately depend on timing, so equality across
configurations is not a sound property for them (the deterministic
handshake versions live in test_equivalence.py).
"""

from hypothesis import given, settings, strategies as st

from repro.kernel.tasks import KernelObjects, TaskSpec
from tests.conftest import build_and_run

# Callee-saved registers a random program may use freely.
_REGS = ("s0", "s1", "s2", "s3", "s4", "s5", "a3", "a4", "t3", "t4")

_op = st.one_of(
    st.tuples(st.just("set"), st.sampled_from(_REGS),
              st.integers(0, 2047)),
    st.tuples(st.just("add"), st.sampled_from(_REGS),
              st.sampled_from(_REGS)),
    st.tuples(st.just("xor"), st.sampled_from(_REGS),
              st.sampled_from(_REGS)),
    st.tuples(st.just("print"), st.sampled_from(_REGS), st.just(0)),
    st.tuples(st.just("yield"), st.just(""), st.just(0)),
    st.tuples(st.just("spin"), st.just(""), st.integers(1, 12)),
)

_program = st.lists(_op, min_size=3, max_size=14)


def _render(name: str, ops, halts: bool) -> str:
    lines = [f"task_{name}:"]
    for reg in _REGS:
        lines.append(f"    li   {reg}, 0")
    for index, (kind, arg, value) in enumerate(ops):
        if kind == "set":
            lines.append(f"    li   {arg}, {value}")
        elif kind == "add":
            lines.append(f"    add  {arg}, {arg}, {value}")
        elif kind == "xor":
            lines.append(f"    xor  {arg}, {arg}, {value}")
        elif kind == "print":
            lines += [
                f"    andi a0, {arg}, 63",
                "    addi a0, a0, 48",
                "    li   t0, 0xFFFF0004",
                "    sw   a0, 0(t0)",
            ]
        elif kind == "yield":
            lines.append("    jal  k_yield")
        elif kind == "spin":
            label = f"{name}_sp{index}"
            lines += [
                f"    li   t1, {value}",
                f"{label}:",
                "    addi t1, t1, -1",
                f"    bnez t1, {label}",
            ]
    if halts:
        lines += ["    li   a0, 0", "    jal  k_halt"]
    else:
        lines += [f"{name}_park:", "    jal  k_yield",
                  f"    j    {name}_park"]
    return "\n".join(lines) + "\n"


@settings(max_examples=12, deadline=None)
@given(prog_a=_program, prog_b=_program)
def test_random_programs_equivalent_across_configs(prog_a, prog_b):
    body_a = _render("a", prog_a, halts=True)
    body_b = _render("b", prog_b, halts=False)
    objects = KernelObjects(tasks=[TaskSpec("a", body_a, priority=2),
                                   TaskSpec("b", body_b, priority=2)])
    reference = None
    for config in ("vanilla", "CV32RT", "S", "SD", "SLT", "SDLOT", "SPLIT"):
        system = build_and_run("cv32e40p", config, objects,
                               tick_period=1 << 24,  # no preemption
                               max_cycles=500_000)
        if reference is None:
            reference = system.console_text
        else:
            assert system.console_text == reference, config


@settings(max_examples=6, deadline=None)
@given(prog=_program)
def test_random_programs_equivalent_across_cores(prog):
    body = _render("a", prog, halts=True)
    objects = KernelObjects(tasks=[TaskSpec("a", body, priority=2)])
    outputs = {
        core: build_and_run(core, "SLT", objects, tick_period=1 << 24,
                            max_cycles=500_000).console_text
        for core in ("cv32e40p", "cva6", "naxriscv")
    }
    assert len(set(outputs.values())) == 1
