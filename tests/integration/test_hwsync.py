"""Hardware synchronisation extension (paper §7 future work, letter Y)."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.kernel.builder import KernelBuilder
from repro.kernel.tasks import KernelObjects, Semaphore, TaskSpec
from repro.rtosunit.config import parse_config
from repro.rtosunit.hwsync import HardwareSync
from repro.rtosunit.scheduler import HardwareScheduler
from tests.conftest import build_and_run

_CONSUMER = """\
task_con:
    li   s0, 8
con_loop:
    la   a0, sem_sig
    jal  k_sem_take
    addi s0, s0, -1
    bnez s0, con_loop
    li   a0, 0
    jal  k_halt
"""

_PRODUCER = """\
task_pro:
pro_loop:
    la   a0, sem_sig
    jal  k_sem_give
    j    pro_loop
"""


def _signal_objects():
    return KernelObjects(
        tasks=[TaskSpec("con", _CONSUMER, priority=3),
               TaskSpec("pro", _PRODUCER, priority=1)],
        semaphores=[Semaphore("sig", initial=0)])


class TestConfig:
    def test_y_requires_t(self):
        with pytest.raises(ConfigurationError):
            parse_config("SY")
        with pytest.raises(ConfigurationError):
            parse_config("Y")

    def test_names(self):
        assert parse_config("TY").name == "TY"
        assert parse_config("SLTY").name == "SLTY"
        assert parse_config("SPLITY").name == "SPLITY"

    def test_slot_capacity_enforced(self):
        objects = KernelObjects(
            tasks=[TaskSpec("t", "task_t:\nt_l:\n    j t_l\n", priority=1)],
            semaphores=[Semaphore(f"s{i}") for i in range(5)])
        with pytest.raises(Exception):
            KernelBuilder(config=parse_config("TY"), objects=objects)


class TestHardwareSyncModel:
    def _sync(self):
        sched = HardwareScheduler(length=8)
        sched.add_ready(0, 2)
        sched.add_ready(1, 1)
        return HardwareSync(sched, slots=2), sched

    def test_take_available(self):
        sync, _ = self._sync()
        sync.counts[0] = 1
        assert sync.take(0, task_id=0, priority=2, cycle=0) == 1
        assert sync.counts[0] == 0

    def test_take_blocks_and_removes_from_ready(self):
        sync, sched = self._sync()
        assert sync.take(0, task_id=0, priority=2, cycle=0) == 0
        assert 0 not in sched.ready_ids()
        assert sync.blocks == 1

    def test_give_wakes_highest_priority_waiter(self):
        sync, sched = self._sync()
        sync.take(0, task_id=1, priority=1, cycle=0)
        sync.take(0, task_id=0, priority=2, cycle=0)
        woken_code = sync.give(0, cycle=10)
        assert woken_code == 2 + 1  # priority + 1
        assert 0 in sched.ready_ids()
        assert 1 not in sched.ready_ids()

    def test_give_without_waiters_returns_zero(self):
        sync, _ = self._sync()
        assert sync.give(0, cycle=0) == 0
        assert sync.counts[0] == 1

    def test_bad_slot_rejected(self):
        sync, _ = self._sync()
        with pytest.raises(SimulationError):
            sync.take(5, 0, 1, 0)
        with pytest.raises(SimulationError):
            sync.give(-1, 0)

    def test_waiter_overflow(self):
        sched = HardwareScheduler(length=8)
        for task in range(3):
            sched.add_ready(task, 1)
        sync = HardwareSync(sched, slots=1, max_waiters=2)
        sync.take(0, 0, 1, 0)
        sync.take(0, 1, 1, 0)
        with pytest.raises(SimulationError):
            sync.take(0, 2, 1, 0)


class TestEndToEnd:
    @pytest.mark.parametrize("config", ("TY", "SLTY", "SPLITY"))
    def test_semaphore_signalling(self, config):
        system = build_and_run("cv32e40p", config, _signal_objects(),
                               max_cycles=5_000_000)
        sync = system.unit.hwsync
        assert sync.takes >= 8
        assert sync.wakes >= 1

    @pytest.mark.parametrize("core", ("cva6", "naxriscv"))
    def test_other_cores(self, core):
        build_and_run(core, "SLTY", _signal_objects(),
                      max_cycles=5_000_000)

    def test_mutex_initial_value_seeded_by_boot(self):
        body = """\
task_m:
    la   a0, sem_mux
    jal  k_mutex_lock          # must succeed immediately (initial=1)
    la   a0, sem_mux
    jal  k_mutex_unlock
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(
            tasks=[TaskSpec("m", body, priority=2)],
            semaphores=[Semaphore("mux", initial=1)])
        system = build_and_run("cv32e40p", "TY", objects)
        assert system.unit.hwsync.counts[0] == 1  # released again

    def test_same_output_as_software_semaphores(self):
        """The extension changes timing, not semantics."""
        waiter = """\
task_w:
    la   a0, sem_x
    jal  k_sem_take
    li   a0, 'W'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
    li   a0, 0
    jal  k_halt
"""
        giver = """\
task_g:
    jal  k_yield
    li   a0, 'G'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
    la   a0, sem_x
    jal  k_sem_give
g_spin:
    jal  k_yield
    j    g_spin
"""
        objects = KernelObjects(
            tasks=[TaskSpec("w", waiter, priority=3),
                   TaskSpec("g", giver, priority=2)],
            semaphores=[Semaphore("x", initial=0)])
        sw = build_and_run("cv32e40p", "SLT", objects)
        hw = build_and_run("cv32e40p", "SLTY", objects)
        assert sw.console_text == hw.console_text == "GW"

    def test_hwsync_shortens_give_take_paths(self):
        """Coordination-intensive workloads spend fewer cycles (§7)."""
        sw = build_and_run("cv32e40p", "SLT", _signal_objects(),
                           max_cycles=5_000_000)
        hw = build_and_run("cv32e40p", "SLTY", _signal_objects(),
                           max_cycles=5_000_000)
        assert hw.core.cycle < sw.core.cycle

    def test_take_timeout_panics_under_hwsync(self):
        body = """\
task_t:
    la   a0, sem_x
    li   a1, 2
    jal  k_sem_take_timeout
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(
            tasks=[TaskSpec("t", body, priority=2)],
            semaphores=[Semaphore("x", initial=0)])
        from repro.kernel.builder import build_kernel_system

        system = build_kernel_system("cv32e40p", parse_config("TY"), objects)
        assert system.run(max_cycles=1_000_000) == 0xDEAD
