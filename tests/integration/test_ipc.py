"""Semaphore, mutex and queue semantics across configurations.

These tests verify *functional* RTOS behaviour: counting semantics,
blocking/wakeup order, FIFO message order, priority-based wakeup — all
of which must be identical regardless of which RTOSUnit configuration
accelerates the context switches underneath.
"""

import pytest

from repro.kernel.tasks import KernelObjects, MessageQueue, Semaphore, TaskSpec
from tests.conftest import KEY_CONFIGS, build_and_run

_PUTC = """\
putc_{n}:
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
"""


class TestSemaphores:
    @pytest.mark.parametrize("config", KEY_CONFIGS)
    def test_semaphore_signalling(self, config, sem_objects):
        system = build_and_run("cv32e40p", config, sem_objects)
        # Consumer takes 6 times; each take requires a give.
        assert system.core.stats.traps >= 12

    def test_counting_semantics(self):
        """Three gives before any take: the taker never blocks."""
        giver = """\
task_g:
    la   a0, sem_c
    jal  k_sem_give
    la   a0, sem_c
    jal  k_sem_give
    la   a0, sem_c
    jal  k_sem_give
    jal  k_yield
g_spin:
    jal  k_yield
    j    g_spin
"""
        taker = """\
task_t:
    jal  k_yield
    la   a0, sem_c
    jal  k_sem_take
    la   a0, sem_c
    jal  k_sem_take
    la   a0, sem_c
    jal  k_sem_take
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(
            tasks=[TaskSpec("g", giver, priority=2),
                   TaskSpec("t", taker, priority=2)],
            semaphores=[Semaphore("c", initial=0)])
        build_and_run("cv32e40p", "vanilla", objects)

    @pytest.mark.parametrize("config", ("vanilla", "SLT"))
    def test_highest_priority_waiter_wakes_first(self, config):
        """Two waiters of different priority: give wakes the higher one,
        which prints first."""
        waiter = """\
task_{n}:
    la   a0, sem_w
    jal  k_sem_take
    li   a0, '{c}'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
    la   a0, sem_park
    jal  k_sem_take       # park forever
"""
        giver = """\
task_g:
    jal  k_yield
    jal  k_yield
    la   a0, sem_w
    jal  k_sem_give       # wakes hi, which preempts and prints H
    la   a0, sem_w
    jal  k_sem_give       # wakes lo (no preemption: lower priority)
    li   a0, 1
    jal  k_delay          # let lo run and print L
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(
            tasks=[TaskSpec("lo", waiter.format(n="lo", c="L"), priority=2),
                   TaskSpec("hi", waiter.format(n="hi", c="H"), priority=4),
                   TaskSpec("g", giver, priority=3)],
            semaphores=[Semaphore("w", initial=0),
                        Semaphore("park", initial=0)])
        system = build_and_run("cv32e40p", config, objects)
        assert system.console_text == "HL"


class TestMutex:
    @pytest.mark.parametrize("config", ("vanilla", "S", "SLT", "SPLIT"))
    def test_mutual_exclusion(self, config):
        """Both tasks increment a shared counter under the mutex; with a
        yield inside the critical section, a broken mutex would lose
        updates."""
        body = """\
task_{n}:
    li   s0, 5
{n}_loop:
    la   a0, sem_m
    jal  k_mutex_lock
    la   t2, shared_counter
    lw   s1, 0(t2)
    jal  k_yield
    addi s1, s1, 1
    la   t2, shared_counter
    sw   s1, 0(t2)
    la   a0, sem_m
    jal  k_mutex_unlock
    addi s0, s0, -1
    bnez s0, {n}_loop
{end}
"""
        end1 = """\
    la   t2, done_flag
    li   t3, 1
    sw   t3, 0(t2)
m1_spin:
    jal  k_yield
    j    m1_spin
"""
        end2 = """\
wait2:
    la   t2, done_flag
    lw   t3, 0(t2)
    beqz t3, wait2_yield
    la   t2, shared_counter
    lw   a0, 0(t2)
    li   t3, 10
    bne  a0, t3, bad
    li   a0, 0
    jal  k_halt
bad:
    li   a0, 1
    jal  k_halt
wait2_yield:
    jal  k_yield
    j    wait2
"""
        counter_task = """\
task_data:
    jal  k_yield
    j    task_data
shared_counter: .word 0
done_flag: .word 0
"""
        objects = KernelObjects(
            tasks=[TaskSpec("m1", body.format(n="m1", end=end1), priority=2),
                   TaskSpec("m2", body.format(n="m2", end=end2), priority=2),
                   TaskSpec("data", counter_task, priority=1)],
            semaphores=[Semaphore("m", initial=1)])
        build_and_run("cv32e40p", config, objects, max_cycles=5_000_000)


class TestQueues:
    @pytest.mark.parametrize("config", ("vanilla", "T", "SLT"))
    def test_fifo_order_preserved(self, config):
        """Messages 'A'..'F' arrive in order through a 2-deep queue."""
        producer = """\
task_pro:
    li   s0, 'A'
pro_loop:
    la   a0, queue_q
    mv   a1, s0
    jal  k_queue_send
    addi s0, s0, 1
    li   t0, 'F'
    bge  t0, s0, pro_loop
pro_spin:
    jal  k_yield
    j    pro_spin
"""
        consumer = """\
task_con:
    li   s0, 6
con_loop:
    la   a0, queue_q
    jal  k_queue_recv
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
    addi s0, s0, -1
    bnez s0, con_loop
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(
            tasks=[TaskSpec("pro", producer, priority=2),
                   TaskSpec("con", consumer, priority=2)],
            queues=[MessageQueue("q", capacity=2)])
        system = build_and_run("cv32e40p", config, objects,
                               max_cycles=5_000_000)
        assert system.console_text == "ABCDEF"

    def test_producer_blocks_on_full_queue(self):
        """Capacity-1 queue: the producer must block after one send."""
        producer = """\
task_pro:
    la   a0, queue_q
    li   a1, 1
    jal  k_queue_send
    la   a0, queue_q
    li   a1, 2
    jal  k_queue_send
    la   t0, sent_two
    li   t1, 1
    sw   t1, 0(t0)
pro_spin:
    jal  k_yield
    j    pro_spin
sent_two: .word 0
"""
        consumer = """\
task_con:
    jal  k_yield
    la   t0, sent_two
    lw   t1, 0(t0)
    bnez t1, con_bad       # producer must still be blocked
    la   a0, queue_q
    jal  k_queue_recv
    jal  k_yield
    la   t0, sent_two
    lw   t1, 0(t0)
    beqz t1, con_bad       # after a recv the producer completed
    li   a0, 0
    jal  k_halt
con_bad:
    li   a0, 1
    jal  k_halt
"""
        objects = KernelObjects(
            tasks=[TaskSpec("pro", producer, priority=2),
                   TaskSpec("con", consumer, priority=2)],
            queues=[MessageQueue("q", capacity=1)])
        build_and_run("cv32e40p", "vanilla", objects)


class TestDelays:
    @pytest.mark.parametrize("config", ("vanilla", "T", "SLT"))
    def test_delay_duration_respected(self, config):
        """A 3-tick delay resumes between 2 and 4 tick periods later."""
        body = """\
task_d:
    li   t0, 0x200BFF8
    lw   s0, 0(t0)         # mtime before
    li   a0, 3
    jal  k_delay
    li   t0, 0x200BFF8
    lw   s1, 0(t0)         # mtime after
    sub  a0, s1, s0
    li   t1, 2000          # at least 2 periods of 1000
    blt  a0, t1, d_bad
    li   t1, 4200
    bgt  a0, t1, d_bad
    li   a0, 0
    jal  k_halt
d_bad:
    li   a0, 1
    jal  k_halt
"""
        objects = KernelObjects(tasks=[TaskSpec("d", body, priority=2)])
        build_and_run("cv32e40p", config, objects, tick_period=1000,
                      max_cycles=2_000_000)

    @pytest.mark.parametrize("config", ("vanilla", "SLT"))
    def test_delayed_tasks_wake_in_order(self, config):
        """Tasks delaying 1, 2, 3 ticks print in wake order."""
        body = """\
task_{n}:
    li   a0, {ticks}
    jal  k_delay
    li   a0, '{c}'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
{n}_spin:
    jal  k_yield
    j    {n}_spin
"""
        main = """\
task_main:
    li   a0, 5
    jal  k_delay
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(tasks=[
            TaskSpec("d3", body.format(n="d3", ticks=3, c="3"), priority=2),
            TaskSpec("d1", body.format(n="d1", ticks=1, c="1"), priority=2),
            TaskSpec("d2", body.format(n="d2", ticks=2, c="2"), priority=2),
            TaskSpec("main", main, priority=3),
        ])
        system = build_and_run("cv32e40p", config, objects,
                               tick_period=2000, max_cycles=3_000_000)
        assert system.console_text == "123"
