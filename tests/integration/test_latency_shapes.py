"""Latency-shape assertions mirroring the paper's §6.1 findings.

These are the repository's "does the reproduction hold" tests: orderings
and relative magnitudes, not absolute cycle counts (our substrate is a
cycle-level simulator, not the authors' RTL testbench).
"""

import pytest

from repro.harness import run_suite
from repro.rtosunit.config import parse_config

_ITER = 6


@pytest.fixture(scope="module")
def cv32_suites():
    configs = ("vanilla", "CV32RT", "S", "SL", "T", "ST", "SLT",
               "SDLO", "SDLOT", "SPLIT")
    return {name: run_suite("cv32e40p", parse_config(name),
                            iterations=_ITER)
            for name in configs}


class TestMeanLatencyOrdering:
    def test_every_rtosunit_config_beats_vanilla(self, cv32_suites):
        vanilla = cv32_suites["vanilla"].stats.mean
        for name, suite in cv32_suites.items():
            if name == "vanilla":
                continue
            assert suite.stats.mean < vanilla, name

    def test_s_beats_cv32rt(self, cv32_suites):
        """§6.1: (S) overlaps the *entire* save, CV32RT only half."""
        assert cv32_suites["S"].stats.mean < \
            cv32_suites["CV32RT"].stats.mean

    def test_cv32rt_reduction_is_modest(self, cv32_suites):
        """CV32RT achieves only 3–12 % mean reduction (paper)."""
        reduction = cv32_suites["CV32RT"].stats.reduction_vs(
            cv32_suites["vanilla"].stats)
        assert 0.02 <= reduction <= 0.15

    def test_s_reduction_range(self, cv32_suites):
        """(S) yields 17–27 % in the paper; allow a small margin."""
        reduction = cv32_suites["S"].stats.reduction_vs(
            cv32_suites["vanilla"].stats)
        assert 0.12 <= reduction <= 0.32

    def test_progressive_offload_monotonic(self, cv32_suites):
        """vanilla > S > SL > SLT and vanilla > T > ST > SLT."""
        means = {n: cv32_suites[n].stats.mean for n in cv32_suites}
        assert means["vanilla"] > means["S"] > means["SL"] > means["SLT"]
        assert means["vanilla"] > means["T"] > means["ST"] >= means["SLT"]

    def test_slt_reduction_is_large(self, cv32_suites):
        reduction = cv32_suites["SLT"].stats.reduction_vs(
            cv32_suites["vanilla"].stats)
        assert reduction > 0.45

    def test_sdlo_matches_sl(self, cv32_suites):
        """§6.1: without HW scheduling, dirty bits + omission show no
        improvement over (SL) — scheduling dominates, not bandwidth."""
        sl = cv32_suites["SL"].stats.mean
        sdlo = cv32_suites["SDLO"].stats.mean
        assert abs(sdlo - sl) / sl < 0.05

    def test_split_has_lowest_minimum(self, cv32_suites):
        """Preloading achieves the fastest individual switches."""
        split_min = cv32_suites["SPLIT"].stats.minimum
        assert split_min <= min(s.stats.minimum
                                for n, s in cv32_suites.items()
                                if n != "SPLIT")


class TestJitter:
    def test_t_slashes_jitter(self, cv32_suites):
        """§6.1: scheduling offload reduces CV32E40P jitter by >90 %."""
        vanilla = cv32_suites["vanilla"].stats.jitter
        hw_sched = cv32_suites["T"].stats.jitter
        assert hw_sched < vanilla * 0.1

    def test_slt_nearly_eliminates_jitter(self, cv32_suites):
        """§6.1/§7: (SLT) eliminates jitter entirely on CV32E40P."""
        assert cv32_suites["SLT"].stats.jitter <= 2

    def test_store_only_keeps_vanilla_jitter(self, cv32_suites):
        """(S) accelerates storing, but the variable-latency software
        scheduler still dominates the jitter."""
        assert cv32_suites["S"].stats.jitter > \
            cv32_suites["SLT"].stats.jitter * 10

    def test_dirty_bits_trade_jitter_for_mean(self, cv32_suites):
        """(SDLOT) reduces the mean below (SLT) at increased jitter."""
        assert cv32_suites["SDLOT"].stats.mean < \
            cv32_suites["SLT"].stats.mean
        assert cv32_suites["SDLOT"].stats.jitter >= \
            cv32_suites["SLT"].stats.jitter


class TestPreloadBimodality:
    def test_split_is_bimodal(self, cv32_suites):
        """§6.1: results fall into a fast (hit) and slow (miss) cluster."""
        from repro.harness.metrics import Clusters

        samples = cv32_suites["SPLIT"].all_latencies
        clusters = Clusters.split(samples)
        assert clusters.low and clusters.high

    def test_hits_save_tens_of_cycles(self, cv32_suites):
        slt_min = cv32_suites["SLT"].stats.minimum
        split_min = cv32_suites["SPLIT"].stats.minimum
        assert 10 <= slt_min - split_min <= 60


class TestOtherCores:
    @pytest.mark.parametrize("core", ("cva6", "naxriscv"))
    def test_slt_wins_and_jitter_collapses(self, core):
        vanilla = run_suite(core, parse_config("vanilla"),
                            iterations=4).stats
        slt = run_suite(core, parse_config("SLT"), iterations=4).stats
        assert slt.mean < vanilla.mean * 0.7
        # §6.1: jitter reduced by up to 88 % on CVA6/NaxRiscv; the rest
        # comes from caches and speculation the unit cannot control.
        assert slt.jitter < vanilla.jitter * 0.2
        assert slt.jitter > 0  # not fully eliminated on complex cores

    def test_naxriscv_s_gain_is_small(self):
        """The paper's weakest (S) result is on the OoO core."""
        vanilla = run_suite("naxriscv", parse_config("vanilla"),
                            iterations=4).stats
        s_cfg = run_suite("naxriscv", parse_config("S"),
                          iterations=4).stats
        assert 0.0 < s_cfg.reduction_vs(vanilla) < 0.15
