"""Priority-inheritance mutexes (software-scheduled configurations).

The classic inversion scenario: a low-priority task holds the mutex, a
medium-priority CPU hog preempts it, and a high-priority task blocks on
the mutex. Without inheritance, the hog starves the owner and the
high-priority task never runs (unbounded inversion). With inheritance,
the owner is boosted above the hog, finishes its critical section, and
the high-priority task completes.
"""

import pytest

from repro.errors import SimulationError
from repro.kernel.tasks import KernelObjects, Semaphore, TaskSpec
from tests.conftest import build_and_run

_LOW = """\
task_low:
    la   a0, sem_res
    jal  {lock}
    la   t0, locked_flag
    li   t1, 1
    sw   t1, 0(t0)
    li   s0, 4000
low_cs:                          #@ bound 4000
    addi s0, s0, -1
    bnez s0, low_cs
    la   a0, sem_res
    jal  {unlock}
low_spin:
    li   a0, 4
    jal  k_delay
    j    low_spin
locked_flag: .word 0
"""

_MED = """\
task_med:
med_wait:
    la   t0, locked_flag
    lw   t1, 0(t0)
    bnez t1, med_spin
    li   a0, 1
    jal  k_delay
    j    med_wait
med_spin:
    addi s1, s1, 1
    j    med_spin            # CPU hog: never yields once the lock is held
"""

_HIGH = """\
task_high:
high_wait:
    la   t0, locked_flag
    lw   t1, 0(t0)
    bnez t1, high_go
    li   a0, 1
    jal  k_delay
    j    high_wait
high_go:
    la   a0, sem_res
    jal  {lock}
    la   a0, sem_res
    jal  {unlock}
    li   a0, 0
    jal  k_halt
"""


def _objects(lock: str, unlock: str) -> KernelObjects:
    return KernelObjects(
        tasks=[TaskSpec("low", _LOW.format(lock=lock, unlock=unlock),
                        priority=1),
               TaskSpec("med", _MED, priority=2),
               TaskSpec("high", _HIGH.format(lock=lock, unlock=unlock),
                        priority=3)],
        semaphores=[Semaphore("res", initial=1)])


class TestPriorityInheritance:
    @pytest.mark.parametrize("config", ("vanilla", "S", "SL"))
    def test_inversion_resolved_with_pi(self, config):
        """The boosted owner outruns the hog; the scenario completes."""
        build_and_run("cv32e40p", config,
                      _objects("k_mutex_lock_pi", "k_mutex_unlock_pi"),
                      tick_period=2000, max_cycles=3_000_000)

    def test_inversion_starves_without_pi(self):
        """Plain mutexes leave the owner below the hog: livelock."""
        from repro.kernel.builder import build_kernel_system
        from repro.rtosunit.config import parse_config

        system = build_kernel_system(
            "cv32e40p", parse_config("vanilla"),
            _objects("k_mutex_lock", "k_mutex_unlock"), tick_period=2000)
        with pytest.raises(SimulationError):
            system.run(max_cycles=3_000_000)

    def test_priority_restored_after_unlock(self):
        """The owner returns to its base priority once it releases."""
        low = """\
task_low:
    la   a0, sem_res
    jal  k_mutex_lock_pi
    la   t0, locked_flag
    li   t1, 1
    sw   t1, 0(t0)
    li   s0, 4000
low_cs:
    addi s0, s0, -1
    bnez s0, low_cs
    la   a0, sem_res
    jal  k_mutex_unlock_pi
    # Back at base priority: record it for the check below.
    la   t1, current_tcb
    lw   t2, 0(t1)
    lw   t3, 4(t2)            # TCB_PRIORITY
    la   t0, prio_after
    sw   t3, 0(t0)
low_spin:
    li   a0, 4
    jal  k_delay
    j    low_spin
locked_flag: .word 0
prio_after: .word 99
"""
        # A variant of the high task that waits before halting, so the
        # deboosted owner gets to run and record its priority. The hog
        # must also stand down once the handover happened, or it would
        # starve the priority-1 owner forever.
        high = """\
task_high:
high_wait:
    la   t0, locked_flag
    lw   t1, 0(t0)
    bnez t1, high_go
    li   a0, 1
    jal  k_delay
    j    high_wait
high_go:
    la   a0, sem_res
    jal  k_mutex_lock_pi
    la   a0, sem_res
    jal  k_mutex_unlock_pi
    la   t0, done_flag
    li   t1, 1
    sw   t1, 0(t0)
    li   a0, 6
    jal  k_delay
    li   a0, 0
    jal  k_halt
done_flag: .word 0
"""
        med = """\
task_med:
med_wait:
    la   t0, locked_flag
    lw   t1, 0(t0)
    bnez t1, med_spin
    li   a0, 1
    jal  k_delay
    j    med_wait
med_spin:
    la   t0, done_flag
    lw   t1, 0(t0)
    bnez t1, med_park
    addi s1, s1, 1
    j    med_spin
med_park:
    li   a0, 8
    jal  k_delay
    j    med_park
"""
        objects = KernelObjects(
            tasks=[TaskSpec("low", low, priority=1),
                   TaskSpec("med", med, priority=2),
                   TaskSpec("high", high, priority=3)],
            semaphores=[Semaphore("res", initial=1)])
        system = build_and_run("cv32e40p", "vanilla", objects,
                               tick_period=2000, max_cycles=3_000_000)
        addr = None
        # find the symbol through the memory image
        from repro.kernel.builder import KernelBuilder
        from repro.rtosunit.config import parse_config
        builder = KernelBuilder(config=parse_config("vanilla"),
                                objects=objects)
        addr = builder.program().symbols["prio_after"]
        assert system.memory.read_word_raw(addr) == 1

    def test_uncontended_pi_lock_is_plain(self):
        """No contention, no boost: lock/unlock leave priority alone."""
        body = """\
task_solo:
    la   a0, sem_res
    jal  k_mutex_lock_pi
    la   a0, sem_res
    jal  k_mutex_unlock_pi
    la   t1, current_tcb
    lw   t2, 0(t1)
    lw   a0, 4(t2)
    addi a0, a0, -2           # priority must still be 2 -> exit 0
    jal  k_halt
"""
        objects = KernelObjects(
            tasks=[TaskSpec("solo", body, priority=2)],
            semaphores=[Semaphore("res", initial=1)])
        build_and_run("cv32e40p", "vanilla", objects)

    def test_hw_sched_falls_back_to_plain_mutex(self):
        """Under (T) the PI entry points alias the plain mutex (the
        hardware ready list hides task state; see DESIGN.md)."""
        body = """\
task_solo:
    la   a0, sem_res
    jal  k_mutex_lock_pi
    la   a0, sem_res
    jal  k_mutex_unlock_pi
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(
            tasks=[TaskSpec("solo", body, priority=2)],
            semaphores=[Semaphore("res", initial=1)])
        build_and_run("cv32e40p", "SLT", objects)
