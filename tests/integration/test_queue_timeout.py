"""Queue receive with timeout."""

import pytest

from repro.kernel.tasks import KernelObjects, MessageQueue, TaskSpec
from tests.conftest import build_and_run

_RECEIVER = """\
task_rx:
    la   a0, queue_q
    li   a1, 2
    jal  k_queue_recv_timeout
    bnez a1, rx_bad            # empty queue: must time out
    li   t0, 0xFFFF0004
    li   a0, 'T'
    sw   a0, 0(t0)
    la   t0, go_flag
    li   t1, 1
    sw   t1, 0(t0)
    la   a0, queue_q
    li   a1, 50
    jal  k_queue_recv_timeout
    beqz a1, rx_bad            # sender delivered: must succeed
    li   t1, 0x77
    bne  a0, t1, rx_bad        # with the right payload
    li   t0, 0xFFFF0004
    li   a0, 'K'
    sw   a0, 0(t0)
    li   a0, 0
    jal  k_halt
rx_bad:
    li   a0, 1
    jal  k_halt
go_flag: .word 0
"""

_SENDER = """\
task_tx:
tx_wait:
    la   t0, go_flag
    lw   t1, 0(t0)
    bnez t1, tx_send
    jal  k_yield
    j    tx_wait
tx_send:
    la   a0, queue_q
    li   a1, 0x77
    jal  k_queue_send
tx_spin:
    jal  k_yield
    j    tx_spin
"""


def _objects():
    return KernelObjects(
        tasks=[TaskSpec("rx", _RECEIVER, priority=3),
               TaskSpec("tx", _SENDER, priority=2)],
        queues=[MessageQueue("q", capacity=2)])


class TestQueueRecvTimeout:
    @pytest.mark.parametrize("config",
                             ("vanilla", "SL", "T", "SLT", "SLTY"))
    def test_timeout_then_delivery(self, config):
        system = build_and_run("cv32e40p", config, _objects(),
                               tick_period=1000, max_cycles=5_000_000)
        assert system.console_text == "TK"

    @pytest.mark.parametrize("core", ("cva6", "naxriscv"))
    def test_other_cores(self, core):
        system = build_and_run(core, "SLT", _objects(),
                               tick_period=1000, max_cycles=5_000_000)
        assert system.console_text == "TK"

    def test_nonblocking_when_data_present(self):
        body = """\
task_f:
    la   a0, queue_q
    li   a1, 5
    jal  k_queue_send
    la   a0, queue_q
    li   a1, 3
    jal  k_queue_recv_timeout
    beqz a1, f_bad
    li   t1, 5
    bne  a0, t1, f_bad
    li   a0, 0
    jal  k_halt
f_bad:
    li   a0, 1
    jal  k_halt
"""
        objects = KernelObjects(
            tasks=[TaskSpec("f", body, priority=2)],
            queues=[MessageQueue("q", capacity=2)])
        system = build_and_run("cv32e40p", "vanilla", objects)
        assert system.core.stats.traps <= 2  # never blocked
