"""The full robustness matrix: mixed_stress on every core × config.

`mixed_stress` exercises every kernel service at once (semaphores,
queues, delays, yields, timer preemption) with the hardware lists at
capacity; running it across the whole design space is the broadest
single correctness statement in the suite.
"""

import pytest

from repro.harness import run_workload
from repro.rtosunit.config import EVALUATED_CONFIGS, parse_config
from repro.workloads import mixed_stress

_EXTENDED = tuple(EVALUATED_CONFIGS) + ("TY", "SLTY", "SPLITY")


@pytest.mark.parametrize("config", _EXTENDED)
def test_cv32e40p_matrix(config):
    result = run_workload("cv32e40p", parse_config(config),
                          mixed_stress(6))
    assert result.stats.count > 50


@pytest.mark.parametrize("config", ("CV32RT", "S", "SL", "T", "SLT",
                                    "SDLOT", "SPLIT", "SLTY"))
@pytest.mark.parametrize("core", ("cva6", "naxriscv"))
def test_complex_core_matrix(core, config):
    result = run_workload(core, parse_config(config), mixed_stress(6))
    assert result.stats.count > 50


def test_matrix_totals_are_plausible():
    """Accelerated configs complete the same workload in fewer cycles."""
    vanilla = run_workload("cv32e40p", parse_config("vanilla"),
                           mixed_stress(6))
    slt = run_workload("cv32e40p", parse_config("SLT"), mixed_stress(6))
    assert slt.cycles < vanilla.cycles
