"""Task start/suspend control (vTaskSuspend/vTaskResume equivalents)."""

import pytest

from repro.kernel.tasks import KernelObjects, TaskSpec
from tests.conftest import build_and_run

_STARTER = """\
task_main:
    li   a0, 'M'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
    la   a0, tcb_dorm
    jal  k_task_start
    jal  k_yield
    li   a0, 0
    jal  k_halt
"""

_DORMANT = """\
task_dorm:
    li   a0, 'D'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
dorm_park:
    jal  k_yield
    j    dorm_park
"""


class TestTaskStart:
    @pytest.mark.parametrize("config", ("vanilla", "S", "SLT", "SLTY"))
    def test_dormant_task_runs_after_start(self, config):
        objects = KernelObjects(tasks=[
            TaskSpec("main", _STARTER, priority=2),
            TaskSpec("dorm", _DORMANT, priority=2, auto_ready=False)])
        system = build_and_run("cv32e40p", config, objects)
        assert system.console_text == "MD"

    def test_dormant_task_never_runs_without_start(self):
        no_start = """\
task_main:
    jal  k_yield
    jal  k_yield
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(tasks=[
            TaskSpec("main", no_start, priority=2),
            TaskSpec("dorm", _DORMANT, priority=2, auto_ready=False)])
        system = build_and_run("cv32e40p", "vanilla", objects)
        assert "D" not in system.console_text

    def test_start_is_idempotent(self):
        double_start = """\
task_main:
    la   a0, tcb_dorm
    jal  k_task_start
    la   a0, tcb_dorm
    jal  k_task_start
    jal  k_yield
    jal  k_yield
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(tasks=[
            TaskSpec("main", double_start, priority=2),
            TaskSpec("dorm", _DORMANT, priority=2, auto_ready=False)])
        system = build_and_run("cv32e40p", "SLT", objects)
        assert system.console_text.count("D") == 1


class TestSuspendResume:
    @pytest.mark.parametrize("config", ("vanilla", "SLT"))
    def test_suspended_task_stops_until_restarted(self, config):
        worker = """\
task_w:
    li   a0, 'a'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
    jal  k_task_suspend_self
    li   a0, 'b'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
w_park:
    jal  k_yield
    j    w_park
"""
        controller = """\
task_c:
    jal  k_yield
    li   a0, '1'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
    la   a0, tcb_w
    jal  k_task_start
    jal  k_yield
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(tasks=[
            TaskSpec("w", worker, priority=2),
            TaskSpec("c", controller, priority=2)])
        system = build_and_run("cv32e40p", config, objects)
        # Worker prints 'a', suspends; controller prints '1', resumes it;
        # worker prints 'b'.
        assert system.console_text == "a1b"
