"""Preemptive time slicing: fairness among equal-priority tasks (Fig. 2a/b)."""

import pytest

from repro.kernel.builder import KernelBuilder
from repro.kernel.tasks import KernelObjects, TaskSpec
from repro.rtosunit.config import parse_config

_WORKER = """\
task_{n}:
{n}_loop:
    la   t0, counter_{n}
    lw   t1, 0(t0)
    addi t1, t1, 1
    sw   t1, 0(t0)
    j    {n}_loop
counter_{n}: .word 0
"""

_SUPERVISOR = """\
task_sup:
    li   s0, 30
sup_loop:
    li   a0, 1
    jal  k_delay
    addi s0, s0, -1
    bnez s0, sup_loop
    li   a0, 0
    jal  k_halt
"""


def _run(config_name: str, workers: int = 3, tick: int = 1500):
    objects = KernelObjects(
        tasks=[TaskSpec(f"w{i}", _WORKER.format(n=f"w{i}"), priority=1)
               for i in range(workers)]
        + [TaskSpec("sup", _SUPERVISOR, priority=2)])
    builder = KernelBuilder(config=parse_config(config_name),
                            objects=objects, tick_period=tick)
    system = builder.build("cv32e40p")
    program = builder.program()
    exit_code = system.run(max_cycles=10_000_000)
    assert exit_code == 0
    counters = [system.memory.read_word_raw(
        program.symbols[f"counter_w{i}"]) for i in range(workers)]
    return counters


class TestRoundRobinFairness:
    @pytest.mark.parametrize("config", ("vanilla", "S", "T", "SLT"))
    def test_all_equal_priority_tasks_progress(self, config):
        counters = _run(config)
        assert all(count > 0 for count in counters), counters

    @pytest.mark.parametrize("config", ("vanilla", "SLT"))
    def test_progress_is_roughly_fair(self, config):
        """Round-robin time slicing spreads CPU time within ~35 %."""
        counters = _run(config)
        assert min(counters) > 0.65 * max(counters), counters

    def test_no_starvation_with_many_workers(self):
        counters = _run("SLT", workers=5, tick=1000)
        assert all(count > 0 for count in counters), counters

    def test_higher_priority_preempts_on_wake(self):
        """The supervisor (higher priority) always runs when its delay
        expires — CPU-bound lower-priority tasks cannot block it."""
        # Completing _run at all proves this: the supervisor's 30 delays
        # elapsed under permanent CPU pressure from the workers.
        _run("vanilla", workers=3)
