"""Blocking with timeout (§3: the first event — wake or expiry — wins)."""

import pytest

from repro.kernel.tasks import KernelObjects, Semaphore, TaskSpec
from tests.conftest import build_and_run

_TAKER = """\
task_tk:
    li   s2, 2
tk_timeouts:
    la   a0, sem_x
    li   a1, 2
    jal  k_sem_take_timeout
    bnez a0, tk_bad          # nothing given yet: must time out
    li   a0, 'T'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
    addi s2, s2, -1
    bnez s2, tk_timeouts
    la   t0, ready_flag
    li   t1, 1
    sw   t1, 0(t0)
    la   a0, sem_x
    li   a1, 50
    jal  k_sem_take_timeout
    beqz a0, tk_bad          # the giver gave: must succeed
    li   a0, 'K'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
    li   a0, 0
    jal  k_halt
tk_bad:
    li   a0, 1
    jal  k_halt
ready_flag: .word 0
"""

_GIVER = """\
task_gv:
gv_wait:
    la   t0, ready_flag
    lw   t1, 0(t0)
    bnez t1, gv_give
    jal  k_yield
    j    gv_wait
gv_give:
    la   a0, sem_x
    jal  k_sem_give
gv_spin:
    jal  k_yield
    j    gv_spin
"""


def _objects():
    return KernelObjects(
        tasks=[TaskSpec("tk", _TAKER, priority=3),
               TaskSpec("gv", _GIVER, priority=2)],
        semaphores=[Semaphore("x", initial=0)])


class TestSemTakeTimeout:
    @pytest.mark.parametrize("config",
                             ("vanilla", "S", "SL", "T", "SLT", "SPLIT"))
    def test_timeout_then_success(self, config):
        system = build_and_run("cv32e40p", config, _objects(),
                               tick_period=1000, max_cycles=5_000_000)
        assert system.console_text == "TTK"

    @pytest.mark.parametrize("core", ("cva6", "naxriscv"))
    def test_other_cores(self, core):
        system = build_and_run(core, "SLT", _objects(),
                               tick_period=1000, max_cycles=5_000_000)
        assert system.console_text == "TTK"

    def test_timeout_duration_roughly_matches(self):
        """A 3-tick timed wait resumes after ~3 tick periods."""
        body = """\
task_w:
    li   t0, 0x200BFF8
    lw   s0, 0(t0)
    la   a0, sem_never
    li   a1, 3
    jal  k_sem_take_timeout
    bnez a0, w_bad
    li   t0, 0x200BFF8
    lw   s1, 0(t0)
    sub  a0, s1, s0
    li   t1, 2000
    blt  a0, t1, w_bad
    li   t1, 4200
    bgt  a0, t1, w_bad
    li   a0, 0
    jal  k_halt
w_bad:
    li   a0, 1
    jal  k_halt
"""
        objects = KernelObjects(
            tasks=[TaskSpec("w", body, priority=2)],
            semaphores=[Semaphore("never", initial=0)])
        build_and_run("cv32e40p", "vanilla", objects, tick_period=1000,
                      max_cycles=2_000_000)

    def test_immediate_success_skips_blocking(self):
        """With count available, the timeout path is never entered."""
        body = """\
task_f:
    la   a0, sem_full
    li   a1, 1
    jal  k_sem_take_timeout
    beqz a0, f_bad
    li   a0, 0
    jal  k_halt
f_bad:
    li   a0, 1
    jal  k_halt
"""
        objects = KernelObjects(
            tasks=[TaskSpec("f", body, priority=2)],
            semaphores=[Semaphore("full", initial=1)])
        system = build_and_run("cv32e40p", "SLT", objects)
        # No tick needed: the take completed without a single block.
        assert system.core.stats.traps <= 2

    def test_two_waiters_one_times_out(self):
        """Two timed waiters, one give: higher priority gets the token,
        the other times out."""
        waiter = """\
task_{n}:
    la   a0, sem_one
    li   a1, 4
    jal  k_sem_take_timeout
    li   t0, 0xFFFF0004
    beqz a0, {n}_to
    li   a0, '{ok}'
    sw   a0, 0(t0)
    j    {n}_park
{n}_to:
    li   a0, '{to}'
    sw   a0, 0(t0)
{n}_park:
    la   a0, sem_park
    jal  k_sem_take
"""
        giver = """\
task_g:
    jal  k_yield
    la   a0, sem_one
    jal  k_sem_give
    li   a0, 8
    jal  k_delay
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(
            tasks=[TaskSpec("hi", waiter.format(n="hi", ok="H", to="h"),
                            priority=4),
                   TaskSpec("lo", waiter.format(n="lo", ok="L", to="l"),
                            priority=2),
                   TaskSpec("g", giver, priority=3)],
            semaphores=[Semaphore("one", initial=0),
                        Semaphore("park", initial=0)])
        system = build_and_run("cv32e40p", "vanilla", objects,
                               tick_period=1000, max_cycles=5_000_000)
        assert sorted(system.console_text) == ["H", "l"]
