"""Assembler: labels, directives, pseudo-instructions, expressions."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import Program, assemble
from repro.isa.encoding import decode


def first_instr(src: str, origin: int = 0):
    program = assemble(src, origin=origin)
    return decode(program.words[origin], origin)


class TestLabels:
    def test_label_address(self):
        program = assemble("nop\nfoo:\nnop\n")
        assert program.symbols["foo"] == 4

    def test_label_on_same_line(self):
        program = assemble("foo: nop\nbar: nop\n")
        assert program.symbols == {"foo": 0, "bar": 4}

    def test_multiple_labels_one_address(self):
        program = assemble("a:\nb: nop\n")
        assert program.symbols["a"] == program.symbols["b"] == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x: nop\nx: nop\n")

    def test_forward_reference(self):
        program = assemble("j target\nnop\ntarget: nop\n")
        instr = decode(program.words[0], 0)
        assert instr.imm == 8

    def test_backward_reference(self):
        program = assemble("top: nop\nj top\n")
        instr = decode(program.words[4], 4)
        assert instr.imm == -4


class TestDirectives:
    def test_org(self):
        program = assemble(".org 0x100\nnop\n")
        assert 0x100 in program.words

    def test_org_backwards_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("nop\n.org 0\nnop\n")

    def test_word(self):
        program = assemble("data: .word 0xDEADBEEF, 42\n")
        assert program.words[0] == 0xDEADBEEF
        assert program.words[4] == 42

    def test_word_symbolic(self):
        program = assemble("a: .word b\nb: .word a\n")
        assert program.words[0] == 4
        assert program.words[4] == 0

    def test_word_expression(self):
        program = assemble(".equ BASE, 0x1000\nv: .word BASE + (3 << 2)\n")
        assert program.words[0] == 0x100C

    def test_half_and_byte_packing(self):
        program = assemble(".byte 0x11, 0x22\n.half 0x4433\n")
        assert program.words[0] == 0x44332211

    def test_space(self):
        program = assemble(".space 8\nnop\n")
        assert program.words[8] == 0x00000013

    def test_align(self):
        program = assemble(".byte 1\n.align 2\nlab: nop\n")
        assert program.symbols["lab"] == 4

    def test_equ(self):
        program = assemble(".equ X, 7\n.equ Y, X * 2\nv: .word Y\n")
        assert program.words[0] == 14

    def test_asciz(self):
        program = assemble('.asciz "ab"\n')
        assert program.words[0] & 0xFFFFFF == 0x006261

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".bogus 1\n")


class TestExpressions:
    def test_hi_lo_reconstruct(self):
        program = assemble(
            ".equ V, 0x12345FFF\n"
            "lui t0, %hi(V)\n"
            "addi t0, t0, %lo(V)\n")
        hi = decode(program.words[0], 0)
        lo = decode(program.words[4], 4)
        assert ((hi.imm << 12) + lo.imm) & 0xFFFFFFFF == 0x12345FFF

    def test_char_literal(self):
        instr = first_instr("li a0, 'A'\n")
        assert instr.imm == 65

    def test_negative_symbol(self):
        program = assemble(".equ OFF, 16\naddi a0, a1, -OFF\n")
        assert decode(program.words[0]).imm == -16

    def test_disallowed_construct_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("v: .word __import__('os')\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("li a0, MISSING\n")


class TestPseudoInstructions:
    def test_nop(self):
        assert first_instr("nop\n").mnemonic == "addi"

    def test_mv(self):
        instr = first_instr("mv a0, a1\n")
        assert (instr.mnemonic, instr.rd, instr.rs1) == ("addi", 10, 11)

    def test_li_small(self):
        instr = first_instr("li a0, 42\n")
        assert instr.mnemonic == "addi"
        assert instr.imm == 42

    def test_li_large_two_instructions(self):
        program = assemble("li a0, 0x12345678\nend: nop\n")
        assert program.symbols["end"] == 8

    def test_li_large_value(self):
        program = assemble("li a0, 0xFFFF0000\n")
        hi = decode(program.words[0], 0)
        lo = decode(program.words[4], 4)
        value = ((hi.imm << 12) + lo.imm) & 0xFFFFFFFF
        assert value == 0xFFFF0000

    def test_la(self):
        program = assemble(".org 0x1000\nla a0, target\ntarget: nop\n",
                           origin=0x1000)
        hi = decode(program.words[0x1000], 0x1000)
        lo = decode(program.words[0x1004], 0x1004)
        assert ((hi.imm << 12) + lo.imm) & 0xFFFFFFFF == 0x1008

    def test_branch_pseudos(self):
        for pseudo, real in (("beqz", "beq"), ("bnez", "bne"),
                             ("bltz", "blt"), ("bgez", "bge")):
            instr = first_instr(f"{pseudo} a0, 0\n")
            assert instr.mnemonic == real

    def test_swapped_branches(self):
        instr = first_instr("bgt a0, a1, 0\n")
        assert instr.mnemonic == "blt"
        assert (instr.rs1, instr.rs2) == (11, 10)

    def test_ret(self):
        instr = first_instr("ret\n")
        assert (instr.mnemonic, instr.rd, instr.rs1) == ("jalr", 0, 1)

    def test_call(self):
        program = assemble("call target\nnop\ntarget: nop\n")
        auipc = decode(program.words[0], 0)
        jalr = decode(program.words[4], 4)
        assert auipc.mnemonic == "auipc"
        assert jalr.rd == 1

    def test_csr_pseudos(self):
        instr = first_instr("csrr t0, mstatus\n")
        assert instr.mnemonic == "csrrs"
        assert instr.csr == 0x300
        instr = first_instr("csrw mepc, t0\n")
        assert instr.mnemonic == "csrrw"
        assert instr.csr == 0x341

    def test_csr_immediate_pseudos(self):
        instr = first_instr("csrci mstatus, 8\n")
        assert instr.mnemonic == "csrrci"
        assert instr.imm == 8

    def test_not_neg_seqz_snez(self):
        assert first_instr("not a0, a1\n").mnemonic == "xori"
        assert first_instr("neg a0, a1\n").mnemonic == "sub"
        assert first_instr("seqz a0, a1\n").mnemonic == "sltiu"
        assert first_instr("snez a0, a1\n").mnemonic == "sltu"

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate a0\n")


class TestCustomInstructions:
    def test_add_ready(self):
        instr = first_instr("add_ready a0, a1\n")
        assert instr.mnemonic == "custom.add_ready"
        assert (instr.rs1, instr.rs2) == (10, 11)

    def test_get_hw_sched(self):
        instr = first_instr("get_hw_sched a0\n")
        assert instr.mnemonic == "custom.get_hw_sched"
        assert instr.rd == 10

    def test_switch_rf(self):
        instr = first_instr("switch_rf\n")
        assert instr.mnemonic == "custom.switch_rf"

    def test_set_context_id(self):
        instr = first_instr("set_context_id a2\n")
        assert instr.rs1 == 12


class TestAnnotationsAndComments:
    def test_comment_styles(self):
        program = assemble("nop # hash\nnop // slashes\nnop ; semi\n")
        assert len(program.words) == 3

    def test_bound_annotation_attaches_to_next_instruction(self):
        program = assemble("nop\nloop:  #@ bound 8\naddi a0, a0, 1\n")
        assert program.annotations[4] == {"bound": "8"}

    def test_annotation_on_instruction_line(self):
        program = assemble("addi a0, a0, 1   #@ bound 3\n")
        assert program.annotations[0] == {"bound": "3"}

    def test_source_map(self):
        program = assemble("mv a0, a1\n")
        assert "mv" in program.source_map[0]


class TestProgramMerge:
    def test_merge_disjoint(self):
        left = assemble("nop\n")
        right = assemble(".org 0x100\nother: nop\n")
        merged = left.merged_with(right)
        assert 0 in merged.words and 0x100 in merged.words
        assert merged.symbols["other"] == 0x100

    def test_merge_overlap_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("nop\n").merged_with(assemble("nop\n"))

    def test_symbol_lookup_error(self):
        with pytest.raises(AssemblerError):
            Program().symbol("nope")


class TestOverlapDetection:
    def test_overlapping_code_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("nop\n.org 0\nnop\n")
