"""Property-based assembler tests: layout stability, expression algebra."""

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import _ExprEvaluator, assemble
from repro.isa.encoding import decode

identifier = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)


class TestExpressionEvaluator:
    @given(a=st.integers(-10_000, 10_000), b=st.integers(-10_000, 10_000))
    def test_addition_matches_python(self, a, b):
        ev = _ExprEvaluator({})
        assert ev.eval(f"({a}) + ({b})") == a + b

    @given(a=st.integers(0, 0xFFFF), s=st.integers(0, 15))
    def test_shifts_match_python(self, a, s):
        ev = _ExprEvaluator({})
        assert ev.eval(f"{a} << {s}") == a << s
        assert ev.eval(f"{a} >> {s}") == a >> s

    @given(a=st.integers(0, 0xFFFFFFFF))
    def test_hi_lo_reconstruct(self, a):
        """%hi/%lo must satisfy (hi << 12) + sext(lo) == value (mod 2^32)."""
        ev = _ExprEvaluator({"V": a})
        hi = ev.eval("%hi(V)")
        lo = ev.eval("%lo(V)")
        assert ((hi << 12) + lo) & 0xFFFFFFFF == a
        assert -2048 <= lo <= 2047
        assert 0 <= hi <= 0xFFFFF

    @given(value=st.integers(-(1 << 31), (1 << 31) - 1))
    def test_symbols_resolve(self, value):
        ev = _ExprEvaluator({"sym": value})
        assert ev.eval("sym") == value
        assert ev.eval("sym + 1") == value + 1

    @given(a=st.integers(0, 0xFFFF), b=st.integers(0, 0xFFFF))
    def test_bitwise_matches_python(self, a, b):
        ev = _ExprEvaluator({})
        assert ev.eval(f"{a} & {b}") == a & b
        assert ev.eval(f"{a} | {b}") == a | b
        assert ev.eval(f"{a} ^ {b}") == a ^ b


class TestLiConstruction:
    @settings(max_examples=200)
    @given(value=st.integers(0, 0xFFFFFFFF))
    def test_li_materialises_any_32bit_value(self, value):
        program = assemble(f"li a0, {value:#x}\n")
        words = [program.words[a] for a in sorted(program.words)]
        if len(words) == 1:
            instr = decode(words[0], 0)
            assert instr.imm & 0xFFFFFFFF == value or instr.imm == value
            return
        hi = decode(words[0], 0)
        lo = decode(words[1], 4)
        assert ((hi.imm << 12) + lo.imm) & 0xFFFFFFFF == value


class TestLayoutStability:
    @settings(max_examples=50, deadline=None)
    @given(blocks=st.lists(st.tuples(identifier, st.integers(0, 5)),
                           min_size=2, max_size=6,
                           unique_by=lambda pair: pair[0]))
    def test_forward_and_backward_references_agree(self, blocks):
        """Jump targets resolve identically regardless of direction."""
        labels = [label for label, _ in blocks]
        lines = []
        for label, pad in blocks:
            lines.append(f"{label}:")
            lines.extend(["    nop"] * pad)
        # jump from the end back to each label, and from start forward
        source = f"    j {labels[-1]}\n" + "\n".join(lines) + "\n"
        for label in labels:
            source += f"    j {label}\n"
        program = assemble(source)
        addresses = sorted(program.words)
        for addr in addresses:
            instr = decode(program.words[addr], addr)
            if instr.mnemonic == "jal":
                target = addr + instr.imm
                assert target in program.symbols.values()

    @settings(max_examples=50, deadline=None)
    @given(words=st.lists(st.integers(0, 0xFFFFFFFF), min_size=1,
                          max_size=8))
    def test_data_words_round_trip(self, words):
        source = "data:\n" + "\n".join(
            f"    .word {w:#x}" for w in words) + "\n"
        program = assemble(source, origin=0x100)
        for index, word in enumerate(words):
            assert program.words[0x100 + 4 * index] == word
