"""CSR file semantics: trap entry/exit, bit ops, interrupt enables."""

from repro.isa.csr import (
    CAUSE_MSI,
    CAUSE_MTI,
    CSRFile,
    MEPC,
    MCAUSE,
    MSTATUS,
    MSTATUS_MIE,
    MSTATUS_MPIE,
    MTVEC,
)


class TestBasicAccess:
    def test_unmodelled_csr_reads_zero(self):
        assert CSRFile().read(0x7C0) == 0

    def test_write_read(self):
        csr = CSRFile()
        csr.write(MEPC, 0x1234)
        assert csr.read(MEPC) == 0x1234

    def test_write_masks_to_32_bits(self):
        csr = CSRFile()
        csr.write(MEPC, 0x1_0000_0004)
        assert csr.read(MEPC) == 4

    def test_set_clear_bits(self):
        csr = CSRFile()
        csr.set_bits(MSTATUS, 0x88)
        assert csr.read(MSTATUS) & 0x88 == 0x88
        csr.clear_bits(MSTATUS, 0x8)
        assert csr.read(MSTATUS) & 0x8 == 0

    def test_snapshot_is_a_copy(self):
        csr = CSRFile()
        snap = csr.snapshot()
        csr.write(MEPC, 1)
        assert snap.get(MEPC, 0) == 0


class TestTrapEntryExit:
    def test_entry_masks_interrupts(self):
        csr = CSRFile()
        csr.set_bits(MSTATUS, MSTATUS_MIE)
        csr.enter_trap(CAUSE_MTI, pc=0x80, mtvec_target=0x10)
        assert not csr.mie_global

    def test_entry_saves_pc_and_cause(self):
        csr = CSRFile()
        target = csr.enter_trap(CAUSE_MSI, pc=0x1234, mtvec_target=0x40)
        assert target == 0x40
        assert csr.read(MEPC) == 0x1234
        assert csr.read(MCAUSE) == CAUSE_MSI

    def test_entry_preserves_previous_mie_in_mpie(self):
        csr = CSRFile()
        csr.set_bits(MSTATUS, MSTATUS_MIE)
        csr.enter_trap(CAUSE_MTI, 0, 0)
        assert csr.read(MSTATUS) & MSTATUS_MPIE

    def test_exit_restores_interrupt_enable(self):
        csr = CSRFile()
        csr.set_bits(MSTATUS, MSTATUS_MIE)
        csr.enter_trap(CAUSE_MTI, pc=0x80, mtvec_target=0)
        resume = csr.leave_trap()
        assert resume == 0x80
        assert csr.mie_global

    def test_exit_with_interrupts_previously_off(self):
        csr = CSRFile()
        csr.clear_bits(MSTATUS, MSTATUS_MIE)
        csr.enter_trap(CAUSE_MTI, pc=0x80, mtvec_target=0)
        csr.leave_trap()
        assert not csr.mie_global

    def test_nested_semantics_round_trip(self):
        """enter → leave must be the identity on the MIE bit."""
        for initially_on in (False, True):
            csr = CSRFile()
            if initially_on:
                csr.set_bits(MSTATUS, MSTATUS_MIE)
            csr.enter_trap(CAUSE_MTI, 0x44, 0)
            csr.leave_trap()
            assert csr.mie_global == initially_on

    def test_mtvec_usage(self):
        csr = CSRFile()
        csr.write(MTVEC, 0x200)
        assert csr.enter_trap(CAUSE_MTI, 0, csr.read(MTVEC)) == 0x200
