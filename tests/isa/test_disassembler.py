"""Disassembler formatting sanity."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodeError
from repro.isa.disassembler import disassemble
from repro.isa.encoding import encode
from repro.isa.instructions import Instr


class TestFormatting:
    def test_r_type(self):
        assert disassemble(encode(Instr("add", rd=10, rs1=11, rs2=12))) == \
            "add a0, a1, a2"

    def test_load(self):
        text = disassemble(encode(Instr("lw", rd=5, rs1=2, imm=-4)))
        assert text == "lw t0, -4(sp)"

    def test_store(self):
        text = disassemble(encode(Instr("sw", rs1=2, rs2=8, imm=12)))
        assert text == "sw s0, 12(sp)"

    def test_branch_shows_target(self):
        word = encode(Instr("beq", rs1=1, rs2=2, imm=8))
        assert "0x108" in disassemble(word, addr=0x100)

    def test_csr_by_name(self):
        text = disassemble(encode(Instr("csrrw", rd=0, rs1=5, csr=0x300)))
        assert "mstatus" in text

    def test_custom(self):
        text = disassemble(encode(Instr("custom.add_ready", rs1=10, rs2=11)))
        assert text == "add_ready a0, a1"

    def test_system(self):
        assert disassemble(encode(Instr("mret"))) == "mret"


@given(word=st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_disassemble_total_on_valid_words(word):
    try:
        text = disassemble(word)
    except DecodeError:
        return
    assert isinstance(text, str) and text
