"""Instruction encode/decode, including property-based round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodeError
from repro.isa.custom import CUSTOM0_OPCODE, CustomOp
from repro.isa.encoding import decode, encode
from repro.isa.instructions import FMT_B, FMT_J, SPECS, Instr


def roundtrip(instr: Instr) -> Instr:
    return decode(encode(instr), addr=instr.addr)


class TestBasicEncodings:
    def test_addi(self):
        # addi a0, a1, 42 — reference encoding
        word = encode(Instr("addi", rd=10, rs1=11, imm=42))
        assert word == 0x02A58513

    def test_nop_encoding(self):
        assert encode(Instr("addi", rd=0, rs1=0, imm=0)) == 0x00000013

    def test_lui(self):
        word = encode(Instr("lui", rd=5, imm=0x12345))
        instr = decode(word)
        assert instr.mnemonic == "lui"
        assert instr.rd == 5
        assert instr.imm == 0x12345

    def test_negative_immediate(self):
        instr = roundtrip(Instr("addi", rd=1, rs1=2, imm=-1))
        assert instr.imm == -1

    def test_store_offset_split(self):
        instr = roundtrip(Instr("sw", rs1=2, rs2=8, imm=-4))
        assert instr.imm == -4
        assert instr.rs1 == 2
        assert instr.rs2 == 8

    def test_branch_offset(self):
        instr = roundtrip(Instr("beq", rs1=1, rs2=2, imm=-8, addr=0x100))
        assert instr.imm == -8
        assert instr.fmt == FMT_B

    def test_jal_offset(self):
        instr = roundtrip(Instr("jal", rd=1, imm=0x1000, addr=0))
        assert instr.imm == 0x1000
        assert instr.fmt == FMT_J

    def test_mret(self):
        assert decode(encode(Instr("mret"))).mnemonic == "mret"

    def test_wfi(self):
        assert decode(encode(Instr("wfi"))).mnemonic == "wfi"

    def test_csrrw(self):
        instr = roundtrip(Instr("csrrw", rd=3, rs1=4, csr=0x341))
        assert instr.csr == 0x341
        assert instr.rd == 3
        assert instr.rs1 == 4

    def test_csrrwi(self):
        instr = roundtrip(Instr("csrrwi", rd=0, imm=8, csr=0x300))
        assert instr.imm == 8
        assert instr.csr == 0x300

    def test_shift_amounts(self):
        for mnemonic in ("slli", "srli", "srai"):
            instr = roundtrip(Instr(mnemonic, rd=1, rs1=2, imm=31))
            assert instr.imm == 31, mnemonic

    def test_srai_vs_srli_disambiguation(self):
        srai = encode(Instr("srai", rd=1, rs1=2, imm=4))
        srli = encode(Instr("srli", rd=1, rs1=2, imm=4))
        assert srai != srli
        assert decode(srai).mnemonic == "srai"
        assert decode(srli).mnemonic == "srli"


class TestCustomEncodings:
    def test_custom_opcode(self):
        word = encode(Instr("custom.add_ready", rs1=10, rs2=11))
        assert word & 0x7F == CUSTOM0_OPCODE

    @pytest.mark.parametrize("op", list(CustomOp))
    def test_custom_roundtrip(self, op):
        mnemonic = f"custom.{op.name.lower()}"
        instr = Instr(mnemonic, rd=5 if op == CustomOp.GET_HW_SCHED else 0,
                      rs1=10, rs2=11)
        decoded = decode(encode(instr))
        assert decoded.mnemonic == mnemonic

    def test_funct3_selects_operation(self):
        for op in CustomOp:
            word = CUSTOM0_OPCODE | (int(op) << 12)
            decoded = decode(word)
            assert decoded.mnemonic == f"custom.{op.name.lower()}"

    def test_extension_funct3_values_decode(self):
        """funct3 6/7 are the §7 hardware-sync extension instructions."""
        assert decode(CUSTOM0_OPCODE | (6 << 12)).mnemonic == \
            "custom.sem_take"
        assert decode(CUSTOM0_OPCODE | (7 << 12)).mnemonic == \
            "custom.sem_give"

    def test_get_hw_sched_writes_rd(self):
        word = encode(Instr("custom.get_hw_sched", rd=10))
        decoded = decode(word)
        assert decoded.rd == 10

    def test_switch_rf_has_no_operands(self):
        decoded = decode(encode(Instr("custom.switch_rf")))
        assert decoded.rd == decoded.rs1 == decoded.rs2 == 0


class TestDecodeErrors:
    def test_all_zero_word(self):
        with pytest.raises(DecodeError):
            decode(0)

    def test_unknown_opcode(self):
        with pytest.raises(DecodeError):
            decode(0x7F)

    def test_unknown_system(self):
        with pytest.raises(DecodeError):
            decode(0x10000073)  # imm12=0x100 is not ecall/ebreak/mret/wfi

    def test_immediate_overflow_rejected(self):
        with pytest.raises(DecodeError):
            encode(Instr("addi", rd=1, rs1=1, imm=4096))

    def test_misaligned_branch_rejected(self):
        with pytest.raises(DecodeError):
            encode(Instr("beq", rs1=0, rs2=0, imm=3))


_R_TYPE = sorted(m for m, s in SPECS.items() if s.fmt == "R")
_I_ARITH = ["addi", "slti", "sltiu", "xori", "ori", "andi"]
_LOADS = ["lb", "lh", "lw", "lbu", "lhu"]
_STORES = ["sb", "sh", "sw"]
_BRANCHES = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]

regs = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)


class TestRoundTripProperties:
    @given(m=st.sampled_from(_R_TYPE), rd=regs, rs1=regs, rs2=regs)
    def test_r_type(self, m, rd, rs1, rs2):
        instr = roundtrip(Instr(m, rd=rd, rs1=rs1, rs2=rs2))
        assert (instr.mnemonic, instr.rd, instr.rs1, instr.rs2) == \
            (m, rd, rs1, rs2)

    @given(m=st.sampled_from(_I_ARITH), rd=regs, rs1=regs, imm=imm12)
    def test_i_type(self, m, rd, rs1, imm):
        instr = roundtrip(Instr(m, rd=rd, rs1=rs1, imm=imm))
        assert (instr.mnemonic, instr.rd, instr.rs1, instr.imm) == \
            (m, rd, rs1, imm)

    @given(m=st.sampled_from(_LOADS), rd=regs, rs1=regs, imm=imm12)
    def test_loads(self, m, rd, rs1, imm):
        instr = roundtrip(Instr(m, rd=rd, rs1=rs1, imm=imm))
        assert (instr.rd, instr.rs1, instr.imm) == (rd, rs1, imm)

    @given(m=st.sampled_from(_STORES), rs1=regs, rs2=regs, imm=imm12)
    def test_stores(self, m, rs1, rs2, imm):
        instr = roundtrip(Instr(m, rs1=rs1, rs2=rs2, imm=imm))
        assert (instr.rs1, instr.rs2, instr.imm) == (rs1, rs2, imm)

    @given(m=st.sampled_from(_BRANCHES), rs1=regs, rs2=regs,
           imm=st.integers(min_value=-2048, max_value=2047))
    def test_branches(self, m, rs1, rs2, imm):
        offset = imm * 2  # branch offsets are even
        instr = roundtrip(Instr(m, rs1=rs1, rs2=rs2, imm=offset))
        assert (instr.rs1, instr.rs2, instr.imm) == (rs1, rs2, offset)

    @given(rd=regs, imm=st.integers(min_value=-(1 << 19),
                                    max_value=(1 << 19) - 1))
    def test_jal(self, rd, imm):
        offset = imm * 2
        instr = roundtrip(Instr("jal", rd=rd, imm=offset))
        assert (instr.rd, instr.imm) == (rd, offset)

    @given(rd=regs, imm=st.integers(min_value=0, max_value=(1 << 20) - 1))
    def test_lui_auipc(self, rd, imm):
        for m in ("lui", "auipc"):
            instr = roundtrip(Instr(m, rd=rd, imm=imm))
            assert (instr.rd, instr.imm) == (rd, imm)

    @given(word=st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_decode_never_crashes_unexpectedly(self, word):
        try:
            instr = decode(word)
        except DecodeError:
            return
        # Whatever decodes must re-encode to a word that decodes to the
        # same instruction (fields may normalise, e.g. unused bits drop).
        again = decode(encode(instr))
        assert again.mnemonic == instr.mnemonic
        assert (again.rd, again.rs1, again.rs2) == \
            (instr.rd, instr.rs1, instr.rs2)
