"""Register naming and context-register bookkeeping."""

import pytest

from repro.errors import AssemblerError
from repro.isa.registers import (
    ABI_NAMES,
    CONTEXT_SAVED_REGS,
    CONTEXT_SLOT_WORDS,
    CONTEXT_WORDS,
    reg_name,
    reg_num,
)


class TestNames:
    def test_all_32_registers_named(self):
        assert len(ABI_NAMES) == 32

    def test_zero_register(self):
        assert reg_num("zero") == 0
        assert reg_num("x0") == 0

    def test_abi_aliases(self):
        assert reg_num("sp") == 2
        assert reg_num("ra") == 1
        assert reg_num("gp") == 3
        assert reg_num("tp") == 4

    def test_fp_is_s0(self):
        assert reg_num("fp") == reg_num("s0") == 8

    def test_numeric_spelling(self):
        for num in range(32):
            assert reg_num(f"x{num}") == num

    def test_case_insensitive(self):
        assert reg_num("SP") == 2
        assert reg_num("A0") == 10

    def test_round_trip(self):
        for num in range(32):
            assert reg_num(reg_name(num)) == num

    def test_unknown_register_raises(self):
        with pytest.raises(AssemblerError):
            reg_num("x32")
        with pytest.raises(AssemblerError):
            reg_num("bogus")

    def test_reg_name_out_of_range(self):
        with pytest.raises(AssemblerError):
            reg_name(32)
        with pytest.raises(AssemblerError):
            reg_name(-1)


class TestContextRegisters:
    def test_29_saved_registers(self):
        """The paper: 29 GPRs must be preserved (x0, gp, tp excluded)."""
        assert len(CONTEXT_SAVED_REGS) == 29

    def test_excluded_registers(self):
        assert 0 not in CONTEXT_SAVED_REGS
        assert 3 not in CONTEXT_SAVED_REGS  # gp
        assert 4 not in CONTEXT_SAVED_REGS  # tp

    def test_context_is_31_words(self):
        """29 GPRs + mstatus + mepc (paper §3)."""
        assert CONTEXT_WORDS == 31

    def test_slot_overprovisioned_to_32(self):
        """§4.2: 32-word chunks so the address is just id << 7."""
        assert CONTEXT_SLOT_WORDS == 32
        assert CONTEXT_SLOT_WORDS * 4 == 128

    def test_saved_registers_sorted_unique(self):
        assert list(CONTEXT_SAVED_REGS) == sorted(set(CONTEXT_SAVED_REGS))
