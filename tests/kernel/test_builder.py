"""Kernel builder: source generation, static data initialisation."""

import pytest

from repro.errors import KernelError
from repro.kernel.builder import KernelBuilder
from repro.kernel.layout import (
    FRAME_BYTES,
    FRAME_MEPC,
    FRAME_MSTATUS,
    INITIAL_MSTATUS,
    NODE_SIZE,
    TCB_PRIORITY,
    TCB_STATE_NODE,
    TCB_TASK_ID,
    TCB_TOP_OF_STACK,
)
from repro.kernel.tasks import KernelObjects, MessageQueue, Semaphore, TaskSpec
from repro.mem.regions import MemoryLayout
from repro.rtosunit.config import EVALUATED_CONFIGS, parse_config

_BODY = "task_{n}:\n{n}_loop:\n    jal  k_yield\n    j    {n}_loop\n"


def make_objects(names=("a", "b"), priorities=None):
    priorities = priorities or [1] * len(names)
    return KernelObjects(tasks=[
        TaskSpec(n, _BODY.format(n=n), priority=p)
        for n, p in zip(names, priorities)])


class TestSourceGeneration:
    @pytest.mark.parametrize("config_name", EVALUATED_CONFIGS)
    def test_assembles_for_every_config(self, config_name):
        builder = KernelBuilder(config=parse_config(config_name),
                                objects=make_objects())
        program = builder.program()
        assert "isr_entry" in program.symbols
        assert "_start" in program.symbols

    def test_idle_task_appended(self):
        builder = KernelBuilder(config=parse_config("vanilla"),
                                objects=make_objects())
        assert builder.tasks[-1].name == "idle"
        assert builder.tasks[-1].priority == 0

    def test_reserved_idle_name_rejected(self):
        objects = KernelObjects(tasks=[TaskSpec("idle", _BODY.format(n="idle"),
                                                priority=1)])
        with pytest.raises(KernelError):
            KernelBuilder(config=parse_config("vanilla"), objects=objects)

    def test_hw_list_capacity_enforced(self):
        names = [f"t{i}" for i in range(9)]
        with pytest.raises(KernelError):
            KernelBuilder(config=parse_config("SLT"),
                          objects=make_objects(names))

    def test_sw_config_has_scheduler_code(self):
        source = KernelBuilder(config=parse_config("vanilla"),
                               objects=make_objects()).source()
        assert "switch_context_sw:" in source
        assert "tick_handler:" in source

    def test_hw_sched_config_omits_sw_scheduler(self):
        source = KernelBuilder(config=parse_config("SLT"),
                               objects=make_objects()).source()
        assert "switch_context_sw:" not in source
        assert "get_hw_sched" in source

    def test_custom_ext_handler_included(self):
        objects = make_objects()
        objects.ext_handler = "ext_irq_handler:\n    li a5, 9\n    ret\n"
        source = KernelBuilder(config=parse_config("vanilla"),
                               objects=objects).source()
        assert "li a5, 9" in source


class TestStaticData:
    def _load(self, config_name, objects=None, layout=None):
        from repro.cores import CV32E40P
        from repro.cores.system import System

        builder = KernelBuilder(config=parse_config(config_name),
                                objects=objects or make_objects(),
                                layout=layout or MemoryLayout())
        program = builder.program()
        system = System(CV32E40P, builder.config, layout=builder.layout)
        system.load(program)
        return builder, program, system.memory

    def test_tcb_fields(self):
        builder, program, mem = self._load("vanilla")
        tcb = program.symbols["tcb_a"]
        assert mem.read_word_raw(tcb + TCB_TASK_ID) == 0
        assert mem.read_word_raw(tcb + TCB_PRIORITY) == 1
        top = mem.read_word_raw(tcb + TCB_TOP_OF_STACK)
        assert top == builder.layout.stack_top(0) - FRAME_BYTES

    def test_initial_stack_frame(self):
        _, program, mem = self._load("vanilla")
        tcb = program.symbols["tcb_b"]
        frame = mem.read_word_raw(tcb + TCB_TOP_OF_STACK)
        assert mem.read_word_raw(frame + FRAME_MSTATUS) == INITIAL_MSTATUS
        assert mem.read_word_raw(frame + FRAME_MEPC) == \
            program.symbols["task_b"]

    def test_region_slots_for_store_config(self):
        builder, program, mem = self._load("S")
        region = builder.layout.context_region
        slot = region.slot_addr(0)
        assert mem.read_word_raw(slot + FRAME_MEPC) == \
            program.symbols["task_a"]
        assert mem.read_word_raw(slot + FRAME_MSTATUS) == INITIAL_MSTATUS
        # sp sits at frame index 1 (x2 is second in the save order).
        assert mem.read_word_raw(slot + 4) == builder.layout.stack_top(0)

    def test_ready_list_static_chains(self):
        _, program, mem = self._load("vanilla")
        ready1 = program.symbols["ready_lists"] + 1 * NODE_SIZE
        node_a = program.symbols["tcb_a"] + TCB_STATE_NODE
        node_b = program.symbols["tcb_b"] + TCB_STATE_NODE
        assert mem.read_word_raw(ready1) == node_a          # head
        assert mem.read_word_raw(node_a) == node_b          # a.next
        assert mem.read_word_raw(node_b) == ready1          # b.next = sentinel
        assert mem.read_word_raw(ready1 + 12) == 2          # count

    def test_hw_config_nodes_detached(self):
        _, program, mem = self._load("SLT")
        node_a = program.symbols["tcb_a"] + TCB_STATE_NODE
        assert mem.read_word_raw(node_a + 12) == 0  # owner 0

    def test_current_tcb_is_highest_priority_first(self):
        objects = make_objects(("lo", "hi", "lo2"), priorities=[1, 3, 1])
        _, program, mem = self._load("vanilla", objects=objects)
        current = mem.read_word_raw(program.symbols["current_tcb"])
        assert current == program.symbols["tcb_hi"]

    def test_task_table_order(self):
        _, program, mem = self._load("T")
        table = program.symbols["task_table"]
        assert mem.read_word_raw(table) == program.symbols["tcb_a"]
        assert mem.read_word_raw(table + 4) == program.symbols["tcb_b"]
        assert mem.read_word_raw(table + 8) == program.symbols["tcb_idle"]

    def test_semaphore_initialised(self):
        objects = make_objects()
        objects.semaphores.append(Semaphore("lock", initial=1))
        _, program, mem = self._load("vanilla", objects=objects)
        sem = program.symbols["sem_lock"]
        assert mem.read_word_raw(sem) == 1
        assert mem.read_word_raw(sem + 4) == sem + 4  # empty waiters

    def test_queue_initialised(self):
        objects = make_objects()
        objects.queues.append(MessageQueue("q", capacity=3))
        _, program, mem = self._load("vanilla", objects=objects)
        queue = program.symbols["queue_q"]
        assert mem.read_word_raw(queue + 12) == 3  # capacity
        assert mem.read_word_raw(queue + 16) == \
            program.symbols["queue_q_buf"]


class TestTaskSpecValidation:
    def test_missing_label_rejected(self):
        with pytest.raises(KernelError):
            TaskSpec("x", "nop\n")

    def test_bad_priority_rejected(self):
        with pytest.raises(KernelError):
            TaskSpec("x", "task_x:\n    nop\n", priority=8)

    def test_bad_name_rejected(self):
        with pytest.raises(KernelError):
            TaskSpec("has space", "task_has space:\n")

    def test_duplicate_names_rejected(self):
        objects = KernelObjects(tasks=[
            TaskSpec("x", "task_x:\n    nop\n"),
            TaskSpec("x", "task_x:\n    nop\n")])
        builder = KernelBuilder(config=parse_config("vanilla"),
                                objects=objects, include_idle=False)
        with pytest.raises(KernelError):
            builder.program()
