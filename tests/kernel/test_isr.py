"""ISR structure per configuration (paper Fig. 4).

These tests pin the *shape* of each generated ISR: which phases run in
software, which custom instructions appear, and in which order — the
essence of the paper's configuration ladder.
"""

import pytest

from repro.kernel.isr import isr_asm
from repro.rtosunit.config import EVALUATED_CONFIGS, parse_config


def isr(config_name: str) -> str:
    return isr_asm(parse_config(config_name))


class TestVanilla:
    def test_saves_and_restores_in_software(self):
        text = isr("vanilla")
        assert "addi sp, sp, -FRAME_BYTES" in text
        assert "FRAME_MSTATUS(sp)" in text
        assert text.strip().endswith("mret")

    def test_runs_software_tick_and_scheduler(self):
        text = isr("vanilla")
        assert "jal  tick_handler" in text
        assert "jal  switch_context_sw" in text

    def test_no_custom_instructions(self):
        text = isr("vanilla")
        for mnemonic in ("set_context_id", "get_hw_sched", "switch_rf",
                         "add_ready"):
            assert mnemonic not in text


class TestCV32RT:
    def test_saves_only_half_in_software(self):
        vanilla_stores = isr("vanilla").count("sw   ")
        cv32rt_stores = isr("CV32RT").count("sw   ")
        # 16 of the 28 register stores disappear (hardware snapshot).
        assert vanilla_stores - cv32rt_stores == 16

    def test_full_software_restore(self):
        assert isr("CV32RT").count("lw   ") == isr("vanilla").count("lw   ")


class TestStoreConfigs:
    @pytest.mark.parametrize("name", ("S", "SD"))
    def test_no_software_save_but_software_restore(self, name):
        text = isr(name)
        assert "addi sp, sp, -FRAME_BYTES" not in text
        assert "li   sp, ISR_STACK_TOP" in text
        assert "set_context_id" in text
        assert "switch_rf" in text
        assert "csrr t6, mscratch" in text  # region restore

    @pytest.mark.parametrize("name", ("SL", "SDLO"))
    def test_hardware_restore_drops_switch_rf(self, name):
        text = isr(name)
        assert "set_context_id" in text
        assert "switch_rf" not in text
        assert "mscratch" not in text
        assert text.strip().endswith("mret")


class TestSchedConfigs:
    def test_t_keeps_software_context_handling(self):
        text = isr("T")
        assert "addi sp, sp, -FRAME_BYTES" in text
        assert "get_hw_sched" in text
        assert "jal  tick_handler" not in text  # hardware handles ticks
        assert "switch_context_sw" not in text

    @pytest.mark.parametrize("name", ("ST", "SDT"))
    def test_st_uses_switch_rf(self, name):
        text = isr(name)
        assert "get_hw_sched" in text
        assert "switch_rf" in text

    @pytest.mark.parametrize("name", ("SLT", "SDLOT", "SPLIT"))
    def test_full_offload_isr_is_minimal(self, name):
        """Fig. 4 (g): the ISR merely updates currentTCB."""
        text = isr(name)
        instructions = [line for line in text.splitlines()
                        if line.startswith("    ")]
        assert len(instructions) < 16
        assert "get_hw_sched" in text
        assert "current_tcb" in text
        assert "tick_handler" not in text
        assert "FRAME_BYTES" not in text

    def test_every_config_handles_external_interrupts(self):
        for name in EVALUATED_CONFIGS:
            if name == "vanilla":
                continue
            assert "ext_irq_handler" in isr(name), name


class TestMonotoneShrinkage:
    def test_isr_shrinks_as_features_move_to_hardware(self):
        """The paper's Fig. 4 narrative: each offload shortens the ISR."""
        def size(name):
            return sum(1 for line in isr(name).splitlines()
                       if line.startswith("    "))
        # (Vanilla's tick/scheduler work lives in subroutines, so static
        # ISR size compares the context-handling shells.)
        assert size("vanilla") > size("CV32RT") > size("SL")
        assert size("T") > size("ST") > size("SLT")
        assert size("SLT") < 16
