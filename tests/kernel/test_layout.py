"""Kernel layout constants and the .equ mirror."""

from repro.kernel.layout import (
    CONTEXT_OFFSETS,
    FRAME_BYTES,
    FRAME_MEPC,
    FRAME_MSTATUS,
    INITIAL_MSTATUS,
    MAX_PRIORITIES,
    NODE_SIZE,
    TCB_EVENT_NODE,
    TCB_SIZE,
    TCB_STATE_NODE,
    equates,
)
from repro.mem.regions import CONTEXT_REG_ORDER, MemoryLayout


class TestFrameLayout:
    def test_frame_holds_31_words(self):
        assert FRAME_BYTES == 31 * 4

    def test_csrs_after_gprs(self):
        assert FRAME_MSTATUS == 29 * 4
        assert FRAME_MEPC == 30 * 4

    def test_offsets_cover_all_context_registers(self):
        assert set(CONTEXT_OFFSETS) == set(CONTEXT_REG_ORDER)
        assert sorted(CONTEXT_OFFSETS.values()) == [
            4 * i for i in range(29)]

    def test_initial_mstatus_enables_interrupts_after_mret(self):
        assert INITIAL_MSTATUS & 0x80  # MPIE set


class TestStructLayout:
    def test_nodes_fit_in_tcb(self):
        assert TCB_STATE_NODE + NODE_SIZE <= TCB_EVENT_NODE
        assert TCB_EVENT_NODE + NODE_SIZE <= TCB_SIZE

    def test_priorities(self):
        assert MAX_PRIORITIES == 8


class TestEquates:
    def test_equates_parse_and_match(self):
        text = equates(MemoryLayout(), tick_period=777)
        values = {}
        for line in text.splitlines():
            assert line.startswith(".equ ")
            name, _, value = line[5:].partition(",")
            values[name.strip()] = int(value.strip(), 0)
        assert values["TICK_PERIOD"] == 777
        assert values["FRAME_BYTES"] == FRAME_BYTES
        assert values["TCB_STATE_NODE"] == TCB_STATE_NODE
        assert values["MAX_PRIORITIES"] == MAX_PRIORITIES
        for reg, offset in CONTEXT_OFFSETS.items():
            assert values[f"FRAME_X{reg}"] == offset

    def test_context_base_matches_layout(self):
        layout = MemoryLayout(context_base=0x70000)
        text = equates(layout, tick_period=1)
        assert ".equ CONTEXT_BASE, 0x70000" in text
