"""The assembly list primitives, exercised by real simulation."""

from repro.cores import CV32E40P
from repro.cores.system import System
from repro.isa.assembler import assemble
from repro.kernel.layout import LIST_SENTINEL_VALUE, NODE_NEXT, NODE_OWNER, NODE_PREV, NODE_VALUE
from repro.kernel.lists import LIST_ASM
from repro.rtosunit.config import parse_config

_PRELUDE = """
.equ NODE_NEXT, 0
.equ NODE_PREV, 4
.equ NODE_VALUE, 8
.equ NODE_OWNER, 12
.equ LIST_COUNT, 12
.equ LIST_SCAN_BOUND, 16
.equ HALT, 0xFFFF0000

_start:
    li   sp, 0x8000
"""

_DATA = f"""
.org 0x4000
list: .word list, list, {LIST_SENTINEL_VALUE:#x}, 0
node_a: .word 0, 0, 0, 0
node_b: .word 0, 0, 0, 0
node_c: .word 0, 0, 0, 0
"""


def run_list_program(body: str):
    source = (_PRELUDE + body
              + "\n    li t6, HALT\n    sw zero, 0(t6)\n"
              + LIST_ASM + _DATA)
    system = System(CV32E40P, parse_config("vanilla"))
    program = assemble(source)
    system.load(program)
    system.run(max_cycles=100_000)
    mem = system.memory

    def node(name):
        base = program.symbols[name]
        return {
            "next": mem.read_word_raw(base + NODE_NEXT),
            "prev": mem.read_word_raw(base + NODE_PREV),
            "value": mem.read_word_raw(base + NODE_VALUE),
            "owner": mem.read_word_raw(base + NODE_OWNER),
        }

    return program.symbols, node


class TestInsertTail:
    def test_single_insert(self):
        symbols, node = run_list_program("""
    la   a0, list
    la   a1, node_a
    jal  list_insert_tail
""")
        lst, a = symbols["list"], symbols["node_a"]
        assert node("list")["next"] == a
        assert node("list")["prev"] == a
        assert node("node_a") == {"next": lst, "prev": lst, "value": 0,
                                  "owner": lst}
        assert node("list")["owner"] == 1  # count

    def test_two_inserts_keep_order(self):
        symbols, node = run_list_program("""
    la   a0, list
    la   a1, node_a
    jal  list_insert_tail
    la   a0, list
    la   a1, node_b
    jal  list_insert_tail
""")
        lst = symbols["list"]
        a, b = symbols["node_a"], symbols["node_b"]
        assert node("list")["next"] == a
        assert node("node_a")["next"] == b
        assert node("node_b")["next"] == lst
        assert node("list")["owner"] == 2


class TestRemove:
    def test_remove_middle(self):
        symbols, node = run_list_program("""
    la   a0, list
    la   a1, node_a
    jal  list_insert_tail
    la   a0, list
    la   a1, node_b
    jal  list_insert_tail
    la   a0, list
    la   a1, node_c
    jal  list_insert_tail
    la   a0, node_b
    jal  list_remove
""")
        a, c = symbols["node_a"], symbols["node_c"]
        assert node("node_a")["next"] == c
        assert node("node_c")["prev"] == a
        assert node("node_b")["owner"] == 0
        assert node("list")["owner"] == 2

    def test_remove_only_element_empties_list(self):
        symbols, node = run_list_program("""
    la   a0, list
    la   a1, node_a
    jal  list_insert_tail
    la   a0, node_a
    jal  list_remove
""")
        lst = symbols["list"]
        assert node("list")["next"] == lst
        assert node("list")["prev"] == lst
        assert node("list")["owner"] == 0


class TestInsertSorted:
    def test_ascending_order(self):
        symbols, node = run_list_program("""
    la   a1, node_b
    li   t3, 20
    sw   t3, NODE_VALUE(a1)
    la   a0, list
    jal  list_insert_sorted
    la   a1, node_a
    li   t3, 10
    sw   t3, NODE_VALUE(a1)
    la   a0, list
    jal  list_insert_sorted
    la   a1, node_c
    li   t3, 15
    sw   t3, NODE_VALUE(a1)
    la   a0, list
    jal  list_insert_sorted
""")
        a, b, c = (symbols[f"node_{x}"] for x in "abc")
        assert node("list")["next"] == a       # 10
        assert node("node_a")["next"] == c     # 15
        assert node("node_c")["next"] == b     # 20

    def test_equal_values_fifo(self):
        symbols, node = run_list_program("""
    la   a1, node_a
    li   t3, 5
    sw   t3, NODE_VALUE(a1)
    la   a0, list
    jal  list_insert_sorted
    la   a1, node_b
    li   t3, 5
    sw   t3, NODE_VALUE(a1)
    la   a0, list
    jal  list_insert_sorted
""")
        a, b = symbols["node_a"], symbols["node_b"]
        assert node("list")["next"] == a
        assert node("node_a")["next"] == b
