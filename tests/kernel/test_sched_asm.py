"""The software scheduler and tick handler, observed through kernel state.

These tests run real workloads and then inspect the kernel's data
structures in memory — ready-list chains, ``top_ready_prio``,
``tick_count``, the delay list — to pin ``vTaskSwitchContext`` /
``xTaskIncrementTick`` behaviour beyond what console output shows.
"""

import pytest

from repro.kernel.builder import KernelBuilder
from repro.kernel.layout import NODE_SIZE, TCB_STATE_NODE
from repro.kernel.tasks import KernelObjects, TaskSpec
from repro.rtosunit.config import parse_config


def _build(objects, config="vanilla", tick=2000):
    builder = KernelBuilder(config=parse_config(config), objects=objects,
                            tick_period=tick)
    system = builder.build("cv32e40p")
    return builder, builder.program(), system


def _ready_chain(system, program, priority):
    """Walk ready_lists[priority] and return the task symbol order."""
    header = program.symbols["ready_lists"] + priority * NODE_SIZE
    tcb_by_node = {
        addr + TCB_STATE_NODE: name
        for name, addr in program.symbols.items() if name.startswith("tcb_")
    }
    chain = []
    node = system.memory.read_word_raw(header)  # sentinel.next
    while node != header:
        chain.append(tcb_by_node[node])
        node = system.memory.read_word_raw(node)
        assert len(chain) <= 20, "broken ready-list chain"
    return chain


_SPINNER = """\
task_{n}:
{n}_loop:
    jal  k_yield
    j    {n}_loop
"""

_MAIN = """\
task_main:
    li   s0, {yields}
main_loop:
    jal  k_yield
    addi s0, s0, -1
    bnez s0, main_loop
    li   a0, 0
    jal  k_halt
"""


class TestReadyListInvariants:
    def _run(self, yields):
        objects = KernelObjects(tasks=[
            TaskSpec("main", _MAIN.format(yields=yields), priority=2),
            TaskSpec("x", _SPINNER.format(n="x"), priority=2),
            TaskSpec("y", _SPINNER.format(n="y"), priority=2)])
        return _build(objects)

    def test_chain_intact_after_many_switches(self):
        _, program, system = self._run(yields=9)
        system.run(max_cycles=2_000_000)
        chain = _ready_chain(system, program, priority=2)
        assert sorted(chain) == ["tcb_main", "tcb_x", "tcb_y"]

    def test_round_robin_rotation_order(self):
        """After 3n yields the rotation returns to the start order."""
        _, program_a, system_a = self._run(yields=3)
        system_a.run(max_cycles=2_000_000)
        _, program_b, system_b = self._run(yields=6)
        system_b.run(max_cycles=2_000_000)
        assert _ready_chain(system_a, program_a, 2) == \
            _ready_chain(system_b, program_b, 2)

    def test_count_field_matches_chain(self):
        _, program, system = self._run(yields=5)
        system.run(max_cycles=2_000_000)
        header = program.symbols["ready_lists"] + 2 * NODE_SIZE
        count = system.memory.read_word_raw(header + 12)
        assert count == len(_ready_chain(system, program, 2))


class TestTickHandlerState:
    def test_tick_count_advances(self):
        body = """\
task_main:
    li   a0, 5
    jal  k_delay
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(tasks=[TaskSpec("main", body, priority=2)])
        _, program, system = _build(objects, tick=1000)
        system.run(max_cycles=2_000_000)
        ticks = system.memory.read_word_raw(program.symbols["tick_count"])
        assert ticks >= 5

    def test_delay_list_empties_after_wakes(self):
        body = """\
task_main:
    li   a0, 2
    jal  k_delay
    li   a0, 2
    jal  k_delay
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(tasks=[TaskSpec("main", body, priority=2)])
        _, program, system = _build(objects, tick=1000)
        system.run(max_cycles=2_000_000)
        delay = program.symbols["delay_list"]
        assert system.memory.read_word_raw(delay) == delay  # sentinel.next
        assert system.memory.read_word_raw(delay + 12) == 0  # count

    def test_top_ready_prio_tracks_wakes(self):
        """A high-priority task waking from a delay pushes the top-ready
        marker back up."""
        high = """\
task_high:
h_loop:
    li   a0, 1
    jal  k_delay
    j    h_loop
"""
        main = """\
task_main:
    li   s0, 4
m_loop:
    li   a0, 2
    jal  k_delay
    addi s0, s0, -1
    bnez s0, m_loop
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(tasks=[
            TaskSpec("high", high, priority=5),
            TaskSpec("main", main, priority=2)])
        _, program, system = _build(objects, tick=1500)
        system.run(max_cycles=3_000_000)
        # At halt, main (priority 2) was running and high was delayed,
        # so top_ready_prio had been re-derived down the priority scan.
        top = system.memory.read_word_raw(
            program.symbols["top_ready_prio"])
        assert 0 <= top <= 5


class TestSchedulerPicksHighestPriority:
    @pytest.mark.parametrize("config", ("vanilla", "T"))
    def test_priority_order_respected(self, config):
        lo = """\
task_lo:
    li   a0, 'L'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
lo_park:
    jal  k_yield
    j    lo_park
"""
        hi = """\
task_hi:
    li   a0, 'H'
    li   t0, 0xFFFF0004
    sw   a0, 0(t0)
    li   a0, 1
    jal  k_delay
    li   a0, 0
    jal  k_halt
"""
        objects = KernelObjects(tasks=[TaskSpec("lo", lo, priority=1),
                                       TaskSpec("hi", hi, priority=4)])
        _, _, system = _build(objects, config=config, tick=1500)
        system.run(max_cycles=2_000_000)
        assert system.console_text == "HL"
