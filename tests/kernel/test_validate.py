"""The task-body linter."""

import pytest

from repro.errors import KernelError
from repro.kernel.builder import KernelBuilder
from repro.kernel.tasks import KernelObjects, TaskSpec
from repro.kernel.validate import lint_task, lint_objects, require_clean


def issues_for(body: str, name: str = "t"):
    return lint_task(name, f"task_{name}:\n{body}")


class TestLintRules:
    def test_clean_body_passes(self):
        body = """\
    li   s0, 5
t_loop:
    jal  k_yield
    addi s0, s0, -1
    bnez s0, t_loop
    li   a0, 0
    jal  k_halt
"""
        assert issues_for(body) == []

    def test_mret_flagged(self):
        issues = issues_for("    mret\n")
        assert any(i.code == "task-mret" for i in issues)

    def test_scheduler_custom_instructions_flagged(self):
        for line in ("    get_hw_sched a0", "    switch_rf",
                     "    add_ready a0, a1", "    set_context_id a0",
                     "    rm_task a0", "    add_delay a0, a1"):
            issues = issues_for(line + "\n")
            assert any(i.code == "task-custom" for i in issues), line

    def test_hwsync_instructions_allowed(self):
        """sem_take/sem_give are task-issueable (the API uses them)."""
        assert issues_for("    sem_take t0, t2\n") == []

    def test_gp_tp_writes_flagged(self):
        assert any(i.code == "static-reg"
                   for i in issues_for("    li   gp, 0x1000\n"))
        assert any(i.code == "static-reg"
                   for i in issues_for("    mv   tp, a0\n"))

    def test_gp_reads_allowed(self):
        assert issues_for("    mv   a0, gp\n") == []
        assert issues_for("    sw   gp, 0(a0)\n") == []

    def test_sp_rebase_flagged(self):
        assert any(i.code == "sp-rebase"
                   for i in issues_for("    li   sp, 0x9000\n"))

    def test_sp_adjust_allowed(self):
        assert issues_for("    addi sp, sp, -16\n") == []

    def test_undefined_local_label_flagged(self):
        issues = issues_for("    j    t_nowhere\n")
        assert any(i.code == "undefined-label" for i in issues)

    def test_kernel_symbols_not_flagged(self):
        assert issues_for("    jal  k_yield\n    j    other_task\n") == []

    def test_issue_rendering(self):
        issue = issues_for("    mret\n")[0]
        assert "task-mret" in str(issue)
        assert ":2:" in str(issue)


class TestBuilderIntegration:
    def _objects(self, body):
        return KernelObjects(tasks=[TaskSpec("bad", body, priority=1)])

    def test_builder_rejects_bad_tasks(self):
        body = "task_bad:\n    switch_rf\nbad_l:\n    j bad_l\n"
        with pytest.raises(KernelError, match="task-custom"):
            KernelBuilder(config=__import__("repro.rtosunit.config",
                                            fromlist=["parse_config"])
                          .parse_config("vanilla"),
                          objects=self._objects(body))

    def test_builder_can_skip_validation(self):
        from repro.rtosunit.config import parse_config

        body = "task_bad:\n    mret\nbad_l:\n    j bad_l\n"
        builder = KernelBuilder(config=parse_config("vanilla"),
                                objects=self._objects(body),
                                validate=False)
        builder.program()  # assembles fine; semantics are the user's risk

    def test_lint_objects_covers_all_tasks(self):
        objects = KernelObjects(tasks=[
            TaskSpec("a", "task_a:\n    mret\na_l:\n    j a_l\n",
                     priority=1),
            TaskSpec("b", "task_b:\n    li gp, 1\nb_l:\n    j b_l\n",
                     priority=1)])
        issues = lint_objects(objects)
        assert {issue.task for issue in issues} == {"a", "b"}

    def test_require_clean_message_lists_issues(self):
        objects = KernelObjects(tasks=[
            TaskSpec("x", "task_x:\n    mret\nx_l:\n    j x_l\n",
                     priority=1)])
        with pytest.raises(KernelError, match="x:2"):
            require_clean(objects)
