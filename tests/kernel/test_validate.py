"""The task-body linter and personality representability checks."""

import pytest

from repro.errors import KernelError
from repro.kernel.builder import KernelBuilder
from repro.kernel.tasks import KernelObjects, TaskSpec
from repro.kernel.validate import (lint_task, lint_objects,
                                   personality_conflicts, require_clean)
from repro.personalities import personality_by_name
from repro.rtosunit.config import parse_config


def issues_for(body: str, name: str = "t"):
    return lint_task(name, f"task_{name}:\n{body}")


class TestLintRules:
    def test_clean_body_passes(self):
        body = """\
    li   s0, 5
t_loop:
    jal  k_yield
    addi s0, s0, -1
    bnez s0, t_loop
    li   a0, 0
    jal  k_halt
"""
        assert issues_for(body) == []

    def test_mret_flagged(self):
        issues = issues_for("    mret\n")
        assert any(i.code == "task-mret" for i in issues)

    def test_scheduler_custom_instructions_flagged(self):
        for line in ("    get_hw_sched a0", "    switch_rf",
                     "    add_ready a0, a1", "    set_context_id a0",
                     "    rm_task a0", "    add_delay a0, a1"):
            issues = issues_for(line + "\n")
            assert any(i.code == "task-custom" for i in issues), line

    def test_hwsync_instructions_allowed(self):
        """sem_take/sem_give are task-issueable (the API uses them)."""
        assert issues_for("    sem_take t0, t2\n") == []

    def test_gp_tp_writes_flagged(self):
        assert any(i.code == "static-reg"
                   for i in issues_for("    li   gp, 0x1000\n"))
        assert any(i.code == "static-reg"
                   for i in issues_for("    mv   tp, a0\n"))

    def test_gp_reads_allowed(self):
        assert issues_for("    mv   a0, gp\n") == []
        assert issues_for("    sw   gp, 0(a0)\n") == []

    def test_sp_rebase_flagged(self):
        assert any(i.code == "sp-rebase"
                   for i in issues_for("    li   sp, 0x9000\n"))

    def test_sp_adjust_allowed(self):
        assert issues_for("    addi sp, sp, -16\n") == []

    def test_undefined_local_label_flagged(self):
        issues = issues_for("    j    t_nowhere\n")
        assert any(i.code == "undefined-label" for i in issues)

    def test_kernel_symbols_not_flagged(self):
        assert issues_for("    jal  k_yield\n    j    other_task\n") == []

    def test_issue_rendering(self):
        issue = issues_for("    mret\n")[0]
        assert "task-mret" in str(issue)
        assert ":2:" in str(issue)


class TestBuilderIntegration:
    def _objects(self, body):
        return KernelObjects(tasks=[TaskSpec("bad", body, priority=1)])

    def test_builder_rejects_bad_tasks(self):
        body = "task_bad:\n    switch_rf\nbad_l:\n    j bad_l\n"
        with pytest.raises(KernelError, match="task-custom"):
            KernelBuilder(config=__import__("repro.rtosunit.config",
                                            fromlist=["parse_config"])
                          .parse_config("vanilla"),
                          objects=self._objects(body))

    def test_builder_can_skip_validation(self):
        from repro.rtosunit.config import parse_config

        body = "task_bad:\n    mret\nbad_l:\n    j bad_l\n"
        builder = KernelBuilder(config=parse_config("vanilla"),
                                objects=self._objects(body),
                                validate=False)
        builder.program()  # assembles fine; semantics are the user's risk

    def test_lint_objects_covers_all_tasks(self):
        objects = KernelObjects(tasks=[
            TaskSpec("a", "task_a:\n    mret\na_l:\n    j a_l\n",
                     priority=1),
            TaskSpec("b", "task_b:\n    li gp, 1\nb_l:\n    j b_l\n",
                     priority=1)])
        issues = lint_objects(objects)
        assert {issue.task for issue in issues} == {"a", "b"}

    def test_require_clean_message_lists_issues(self):
        objects = KernelObjects(tasks=[
            TaskSpec("x", "task_x:\n    mret\nx_l:\n    j x_l\n",
                     priority=1)])
        with pytest.raises(KernelError, match="x:2"):
            require_clean(objects)


def _loop_task(name: str, priority: int, auto_ready: bool = True) -> TaskSpec:
    body = f"task_{name}:\n{name}_l:\n    jal  k_yield\n    j    {name}_l\n"
    return TaskSpec(name, body, priority=priority, auto_ready=auto_ready)


class TestPersonalityConflicts:
    """Task-set representability per personality (always enforced)."""

    def test_freertos_accepts_shared_priorities(self):
        personality = personality_by_name("freertos")
        tasks = [_loop_task("a", 2), _loop_task("b", 2)]
        assert personality_conflicts(tasks, personality) == []

    def test_freertos_accepts_suspended_tasks(self):
        personality = personality_by_name("freertos")
        tasks = [_loop_task("a", 2, auto_ready=False)]
        assert personality_conflicts(tasks, personality) == []

    def test_scm_rejects_shared_priorities(self):
        personality = personality_by_name("scm")
        tasks = [_loop_task("a", 2), _loop_task("b", 2), _loop_task("c", 3)]
        conflicts = personality_conflicts(tasks, personality)
        assert len(conflicts) == 1
        assert "'a'" in conflicts[0] and "'b'" in conflicts[0]
        assert "priority 2" in conflicts[0]

    def test_scm_accepts_unique_priorities(self):
        personality = personality_by_name("scm")
        tasks = [_loop_task("a", 1), _loop_task("b", 2), _loop_task("c", 3)]
        assert personality_conflicts(tasks, personality) == []

    def test_echronos_rejects_non_auto_ready(self):
        personality = personality_by_name("echronos")
        tasks = [_loop_task("a", 1), _loop_task("b", 2, auto_ready=False)]
        conflicts = personality_conflicts(tasks, personality)
        assert len(conflicts) == 1
        assert "auto_ready" in conflicts[0]

    def test_echronos_rejects_oversized_task_set(self):
        personality = personality_by_name("echronos")
        tasks = [_loop_task(f"t{i}", i % 8) for i in range(33)]
        assert any("32" in c
                   for c in personality_conflicts(tasks, personality))

    def test_builder_rejects_scm_priority_collision(self):
        # Builder-level enforcement: the idle task occupies priority 0
        # and the two workers collide on 2.
        objects = KernelObjects(tasks=[_loop_task("a", 2),
                                       _loop_task("b", 2)])
        with pytest.raises(KernelError,
                           match="not representable under personality 'scm'"):
            KernelBuilder(config=parse_config("vanilla@scm"),
                          objects=objects)

    def test_builder_rejects_echronos_suspended_task(self):
        objects = KernelObjects(tasks=[
            _loop_task("a", 1), _loop_task("b", 2, auto_ready=False)])
        with pytest.raises(
                KernelError,
                match="not representable under personality 'echronos'"):
            KernelBuilder(config=parse_config("vanilla@echronos"),
                          objects=objects)

    def test_builder_conflict_check_survives_validate_off(self):
        # Representability is structural, not a lint: validate=False must
        # not bypass it (the kernel would not assemble or would misrun).
        objects = KernelObjects(tasks=[_loop_task("a", 2),
                                       _loop_task("b", 2)])
        with pytest.raises(KernelError, match="not representable"):
            KernelBuilder(config=parse_config("vanilla@scm"),
                          objects=objects, validate=False)
