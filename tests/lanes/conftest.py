"""Isolation for lane tests: fresh snapshot store and build cache."""

from __future__ import annotations

import pytest

from repro.kernel.builder import reset_program_cache
from repro.snapshot import reset_store


@pytest.fixture(autouse=True)
def fresh_state(monkeypatch):
    monkeypatch.delenv("REPRO_SNAPSHOT", raising=False)
    monkeypatch.delenv("REPRO_NUMPY", raising=False)
    reset_store()
    reset_program_cache()
    yield
    reset_store()
    reset_program_cache()
