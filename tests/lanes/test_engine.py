"""Lane-pack engine: follower replay, chaos opt-out, DSE parity."""

import dataclasses

import pytest

from repro.dse.executor import DSEExecutor, GridPoint, execute_point
from repro.harness.experiment import derive_point_seed
from repro.lanes import LaneStats, execute_pack, plan_packs, replay_result


def _points(seeds=(0, 1, 2), config="vanilla", workload="yield_pingpong"):
    return [GridPoint(core="cv32e40p", config=config, workload=workload,
                      iterations=2, seed=seed) for seed in seeds]


def _run_obs(run):
    return {
        "latencies": run.latencies,
        "switches": [dataclasses.asdict(s) for s in run.switches],
        "cycles": run.cycles,
        "instret": run.instret,
        "seed": run.seed,
    }


def test_replay_result_restamps_the_derived_seed():
    points = _points(seeds=(3, 4))
    representative = execute_point(points[0])
    follower = replay_result(representative, points[1])
    assert follower.seed == derive_point_seed(4, "cv32e40p", "vanilla",
                                              "yield_pingpong")
    assert follower.latencies == representative.latencies
    assert follower.cycles == representative.cycles


def test_execute_pack_matches_per_point_execution():
    points = _points()
    pack = plan_packs(points, lanes=4)[0]
    results, stats = execute_pack(pack)
    assert stats["executed"] == 1 and stats["replays"] == 2
    for point, run in zip(points, results):
        assert _run_obs(run) == _run_obs(execute_point(point))


def test_execute_pack_mixed_classes_all_execute():
    # Explicit classing: a hand-built pack with two congruence classes
    # simulates once per class (the planner never builds these today).
    points = _points(seeds=(0, 0), workload="yield_pingpong")
    points[1] = dataclasses.replace(points[1], workload="delay_periodic")
    from repro.lanes.pack import LanePack

    results, stats = execute_pack(LanePack(tuple(points)))
    assert stats["executed"] == 2 and stats["replays"] == 0
    for point, run in zip(points, results):
        assert run.workload == point.workload


def test_chaos_campaign_disables_follower_replay(monkeypatch):
    import repro.chaos.hooks as chaos_hooks

    monkeypatch.setattr(chaos_hooks, "active", lambda: object())
    points = _points()
    results, stats = execute_pack(plan_packs(points, lanes=4)[0])
    assert stats["executed"] == 3 and stats["replays"] == 0
    for point, run in zip(points, results):
        assert _run_obs(run) == _run_obs(execute_point(point))


@pytest.mark.parametrize("numpy_env", ["1", "0"])
def test_dse_lane_mode_matches_scalar_run(monkeypatch, numpy_env):
    monkeypatch.setenv("REPRO_NUMPY", numpy_env)
    points = _points(seeds=(0, 1, 2, 3))
    scalar = DSEExecutor(jobs=1).run(points)
    laned = DSEExecutor(jobs=1, lanes=4).run(points)
    assert list(scalar) == list(laned) == points
    for point in points:
        assert _run_obs(scalar[point]) == _run_obs(laned[point])


def test_dse_lane_mode_populates_lane_stats():
    executor = DSEExecutor(jobs=1, lanes=2)
    executor.run(_points(seeds=(0, 1, 2)))
    stats = executor.lane_stats
    assert isinstance(stats, LaneStats)
    assert stats.points == 3 and stats.packs == 2
    assert stats.executed == 2 and stats.replays == 1
    assert stats.occupancy == pytest.approx(1.5)


def test_lane_stats_merge_lockstep_report():
    stats = LaneStats()
    stats.merge_lockstep({"lanes": 4, "vector_instret": 100,
                          "scalar_steps": 7, "divergences": 1,
                          "retirements": 2})
    assert stats.lockstep_lanes == 4
    assert stats.vector_instret == 100
    assert stats.divergences == 1 and stats.retirements == 2
