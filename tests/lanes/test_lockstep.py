"""Lockstep stepper: byte-identity, divergence retirement, admissibility.

The exactness contract under test: a lane run through
:class:`repro.lanes.LockstepStepper` — including one that diverges and
retires to the scalar block engine — finishes byte-identical to the same
system run solo through ``System.run``.
"""

import dataclasses

import pytest

from repro.cores import attach_tracer
from repro.errors import SimulationError
from repro.kernel.builder import KernelBuilder
from repro.lanes import LockstepStepper, inadmissible_reason, lockstep_run
from repro.mem.substrate import get_numpy
from repro.rtosunit.config import parse_config
from repro.workloads import workload_by_name

pytestmark = pytest.mark.skipif(get_numpy() is None,
                                reason="lockstep requires numpy")


def _build(core="cv32e40p", config="vanilla", workload="yield_pingpong",
           iterations=4):
    load = workload_by_name(workload, iterations=iterations)
    builder = KernelBuilder(config=parse_config(config),
                            objects=load.objects,
                            tick_period=load.tick_period)
    return load, builder.build(core, external_events=load.external_events)


def _obs(system):
    core = system.core
    return {
        "regs": list(core.regs),
        "pc": core.pc,
        "cycle": core.cycle,
        "csr": dict(core.csr.regs),
        "stats": dict(vars(core.stats)),
        "memory": bytes(core.mem.data),
        "console": list(system.console),
        "probes": list(system.probes),
        "switches": [dataclasses.asdict(s) for s in system.switches],
        "exit_code": core.exit_code,
    }


def _solo(workload_name, iterations):
    load, system = _build(workload=workload_name, iterations=iterations)
    system.run(max_cycles=load.max_cycles)
    return _obs(system)


@pytest.mark.parametrize("workload", ["yield_pingpong", "delay_periodic"])
def test_identical_lanes_match_solo(workload):
    load, _ = _build(workload=workload)
    systems = [_build(workload=workload)[1] for _ in range(3)]
    report = lockstep_run(systems, max_cycles=load.max_cycles)

    assert report.lanes == 3
    assert report.statuses == ["halted"] * 3
    assert report.divergences == 0 and report.retirements == 0
    assert report.vector_instret > 0, "nothing ran vectorised"
    assert report.occupancy == pytest.approx(3.0)

    reference = _solo(workload, 4)
    for system in systems:
        assert _obs(system) == reference


def test_divergent_lane_retires_and_stays_exact():
    # Different iteration counts encode a different loop immediate in
    # the kernel image: the lanes share a PC trajectory until the word
    # at that address differs, where lane 1 must retire.
    load_a, sys_a = _build(iterations=4)
    load_b, sys_b = _build(iterations=9)
    max_cycles = max(load_a.max_cycles, load_b.max_cycles)
    report = lockstep_run([sys_a, sys_b], max_cycles=max_cycles)

    assert report.divergences == 1 and report.retirements == 1
    assert report.statuses[0] == "halted"
    assert report.statuses[1].startswith("retired:")

    assert _obs(sys_a) == _solo("yield_pingpong", 4)
    assert _obs(sys_b) == _solo("yield_pingpong", 9)


def test_retired_lane_finishes_even_as_pack_of_two():
    # Symmetric check: the lead lane keeps running vectorised after the
    # follower retires (active set shrinks to one).
    load, sys_a = _build(iterations=9)
    _, sys_b = _build(iterations=4)
    report = lockstep_run([sys_a, sys_b], max_cycles=load.max_cycles)
    assert report.retirements == 1
    assert _obs(sys_a) == _solo("yield_pingpong", 9)
    assert _obs(sys_b) == _solo("yield_pingpong", 4)


def test_stepper_reports_scalar_rounds():
    load, system = _build()
    stepper = LockstepStepper([system], max_cycles=load.max_cycles)
    report = stepper.run()
    # CSR setup, mret, wfi and interrupts all take the exact path.
    assert report.scalar_steps > 0
    assert report.vector_instret > 0
    assert system.core.halted


def test_inadmissible_cva6_timing_override():
    _, system = _build(core="cva6")
    reason = inadmissible_reason(system)
    assert reason is not None and "overrides" in reason


def test_inadmissible_rtosunit_config():
    _, system = _build(config="SLT")
    reason = inadmissible_reason(system)
    assert reason is not None and "RTOSUnit" in reason


def test_inadmissible_observer_attached():
    _, system = _build()
    attach_tracer(system.core, capacity=16)
    reason = inadmissible_reason(system)
    assert reason is not None and "observer" in reason


def test_inadmissible_without_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_NUMPY", "0")
    _, system = _build()
    assert inadmissible_reason(system) is not None
    with pytest.raises(SimulationError):
        LockstepStepper([system])


def test_stepper_rejects_mixed_admissibility():
    _, good = _build()
    _, bad = _build(config="SLT")
    with pytest.raises(SimulationError):
        LockstepStepper([good, bad])
