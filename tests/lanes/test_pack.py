"""Pack planning: congruence grouping, chunking, ordering."""

import pytest

from repro.dse.executor import GridPoint
from repro.lanes import LanePack, congruence_key, plan_packs


def _point(core="cv32e40p", config="vanilla", workload="yield_pingpong",
           iterations=2, seed=0):
    return GridPoint(core=core, config=config, workload=workload,
                     iterations=iterations, seed=seed)


def test_congruence_key_ignores_seed():
    assert congruence_key(_point(seed=1)) == congruence_key(_point(seed=99))
    assert congruence_key(_point(config="SLT")) != congruence_key(_point())
    assert (congruence_key(_point(iterations=3))
            != congruence_key(_point(iterations=4)))


def test_plan_packs_groups_congruent_points():
    points = [_point(seed=s) for s in range(3)] + [_point(config="SLT")]
    packs = plan_packs(points, lanes=4)
    assert [pack.width for pack in packs] == [3, 1]
    assert packs[0].points == tuple(points[:3])
    assert packs[1].points == (points[3],)


def test_plan_packs_chunks_to_lane_width():
    points = [_point(seed=s) for s in range(7)]
    packs = plan_packs(points, lanes=3)
    assert [pack.width for pack in packs] == [3, 3, 1]
    flattened = [p for pack in packs for p in pack.points]
    assert flattened == points


def test_plan_packs_preserves_first_seen_order():
    a = _point(config="SLT")
    b = _point(config="vanilla")
    packs = plan_packs([a, b, _point(config="SLT", seed=5)], lanes=8)
    assert packs[0].points[0] is a
    assert packs[1].points == (b,)


def test_plan_packs_rejects_nonpositive_width():
    with pytest.raises(ValueError):
        plan_packs([_point()], lanes=0)


def test_pack_label_names_the_class():
    pack = plan_packs([_point(seed=s) for s in range(2)], lanes=2)[0]
    assert isinstance(pack, LanePack)
    assert "cv32e40p" in pack.label and "yield_pingpong" in pack.label
