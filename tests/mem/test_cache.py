"""Cache timing models: hits, misses, LRU, invalidation."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.cache import CacheModel, WriteBackCache, WriteThroughCache


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = CacheModel(size_bytes=1024, line_bytes=32, ways=2)
        assert not cache.lookup(0x100, is_write=False)
        assert cache.lookup(0x100, is_write=False)

    def test_same_line_hits(self):
        cache = CacheModel(size_bytes=1024, line_bytes=32, ways=2)
        cache.lookup(0x100, is_write=False)
        assert cache.lookup(0x11C, is_write=False)  # same 32-byte line

    def test_different_line_misses(self):
        cache = CacheModel(size_bytes=1024, line_bytes=32, ways=2)
        cache.lookup(0x100, is_write=False)
        assert not cache.lookup(0x120, is_write=False)

    def test_stats(self):
        cache = CacheModel(size_bytes=1024, line_bytes=32, ways=2)
        cache.lookup(0, False)
        cache.lookup(0, False)
        assert (cache.hits, cache.misses) == (1, 1)
        cache.reset_stats()
        assert (cache.hits, cache.misses) == (0, 0)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheModel(size_bytes=1000, line_bytes=32, ways=3)


class TestReplacement:
    def test_lru_eviction(self):
        cache = CacheModel(size_bytes=64, line_bytes=32, ways=2)  # 1 set
        cache.lookup(0x000, False)
        cache.lookup(0x020, False)
        cache.lookup(0x040, False)  # evicts 0x000
        assert not cache.contains(0x000)
        assert cache.contains(0x020)
        assert cache.contains(0x040)

    def test_lru_refreshed_by_hit(self):
        cache = CacheModel(size_bytes=64, line_bytes=32, ways=2)
        cache.lookup(0x000, False)
        cache.lookup(0x020, False)
        cache.lookup(0x000, False)  # refresh
        cache.lookup(0x040, False)  # evicts 0x020, not 0x000
        assert cache.contains(0x000)
        assert not cache.contains(0x020)


class TestWritePolicies:
    def test_write_through_no_allocate(self):
        cache = WriteThroughCache(size_bytes=1024, line_bytes=32, ways=2)
        cache.lookup(0x100, is_write=True)
        assert not cache.contains(0x100)

    def test_write_through_write_hits_existing_line(self):
        cache = WriteThroughCache(size_bytes=1024, line_bytes=32, ways=2)
        cache.lookup(0x100, is_write=False)
        assert cache.lookup(0x100, is_write=True)

    def test_write_back_allocates_on_write(self):
        cache = WriteBackCache(size_bytes=1024, line_bytes=32, ways=2)
        cache.lookup(0x100, is_write=True)
        assert cache.contains(0x100)


class TestInvalidation:
    def test_invalidate_line(self):
        """CV32RT on NaxRiscv invalidates the bypassed snapshot lines."""
        cache = WriteBackCache(size_bytes=1024, line_bytes=32, ways=2)
        cache.lookup(0x200, False)
        cache.invalidate_line(0x200)
        assert not cache.contains(0x200)

    def test_invalidate_missing_line_is_noop(self):
        cache = WriteBackCache(size_bytes=1024, line_bytes=32, ways=2)
        cache.invalidate_line(0x200)  # must not raise
        assert not cache.contains(0x200)
