"""Functional memory: RAM access, alignment, MMIO routing."""

import pytest

from repro.errors import MemoryError_
from repro.mem.memory import HALT_ADDR, MSIP_ADDR, Memory, is_mmio


class _RecordingMMIO:
    def __init__(self):
        self.writes = []

    def read_mmio(self, addr):
        return 0x5A

    def write_mmio(self, addr, value):
        self.writes.append((addr, value))


class TestRAM:
    def test_initially_zero(self):
        assert Memory(size=64).read(0, 4) == 0

    def test_word_round_trip(self):
        mem = Memory(size=64)
        mem.write(8, 0xDEADBEEF, 4)
        assert mem.read(8, 4) == 0xDEADBEEF

    def test_little_endian_bytes(self):
        mem = Memory(size=64)
        mem.write(0, 0x11223344, 4)
        assert mem.read(0, 1) == 0x44
        assert mem.read(3, 1) == 0x11

    def test_halfword(self):
        mem = Memory(size=64)
        mem.write(4, 0xABCD, 2)
        assert mem.read(4, 2) == 0xABCD

    def test_byte_write_preserves_neighbours(self):
        mem = Memory(size=64)
        mem.write(0, 0xFFFFFFFF, 4)
        mem.write(1, 0, 1)
        assert mem.read(0, 4) == 0xFFFF00FF

    def test_write_masks_value(self):
        mem = Memory(size=64)
        mem.write(0, 0x1FF, 1)
        assert mem.read(0, 1) == 0xFF

    def test_out_of_range_rejected(self):
        mem = Memory(size=64)
        with pytest.raises(MemoryError_):
            mem.read(64, 4)
        with pytest.raises(MemoryError_):
            mem.write(62, 0, 4)

    def test_misaligned_rejected(self):
        mem = Memory(size=64)
        with pytest.raises(MemoryError_):
            mem.read(2, 4)
        with pytest.raises(MemoryError_):
            mem.write(1, 0, 2)

    def test_load_program(self):
        mem = Memory(size=64)
        mem.load_program({0: 0x13, 8: 0xFF})
        assert mem.read_word_raw(0) == 0x13
        assert mem.read_word_raw(8) == 0xFF


class TestMMIO:
    def test_is_mmio(self):
        assert is_mmio(HALT_ADDR)
        assert is_mmio(MSIP_ADDR)
        assert not is_mmio(0x1000)

    def test_mmio_write_routed(self):
        mem = Memory(size=64)
        mem.clint = _RecordingMMIO()
        mem.write(HALT_ADDR, 7, 4)
        assert mem.clint.writes == [(HALT_ADDR, 7)]

    def test_mmio_read_routed(self):
        mem = Memory(size=64)
        mem.clint = _RecordingMMIO()
        assert mem.read(MSIP_ADDR, 4) == 0x5A

    def test_mmio_without_handler_rejected(self):
        mem = Memory(size=64)
        with pytest.raises(MemoryError_):
            mem.read(MSIP_ADDR, 4)
        with pytest.raises(MemoryError_):
            mem.write(MSIP_ADDR, 1, 4)

    def test_raw_access_bypasses_mmio_check_only_for_ram(self):
        mem = Memory(size=64)
        mem.write_word_raw(0, 5)
        assert mem.read_word_raw(0) == 5
