"""Context memory region layout (§4.2, optimisation 3)."""

import pytest

from repro.mem.regions import (
    CONTEXT_REG_ORDER,
    ContextRegion,
    MEPC_SLOT_INDEX,
    MSTATUS_SLOT_INDEX,
    MemoryLayout,
)


class TestContextRegion:
    def test_slot_address_is_shift(self):
        """The paper: address = base + (task_id << 7)."""
        region = ContextRegion(base=0x6000, max_tasks=8)
        for task_id in range(8):
            assert region.slot_addr(task_id) == 0x6000 + (task_id << 7)

    def test_slot_out_of_range(self):
        region = ContextRegion(base=0, max_tasks=4)
        with pytest.raises(ValueError):
            region.slot_addr(4)
        with pytest.raises(ValueError):
            region.slot_addr(-1)

    def test_size_and_end(self):
        region = ContextRegion(base=0x1000, max_tasks=4)
        assert region.size == 4 * 128
        assert region.end == 0x1000 + 512

    def test_contains(self):
        region = ContextRegion(base=0x1000, max_tasks=2)
        assert region.contains(0x1000)
        assert region.contains(0x10FF)
        assert not region.contains(0x1100)
        assert not region.contains(0xFFF)

    def test_reg_addr_follows_order(self):
        region = ContextRegion(base=0, max_tasks=1)
        for index, reg in enumerate(CONTEXT_REG_ORDER):
            assert region.reg_addr(0, reg) == 4 * index

    def test_csr_slots_after_gprs(self):
        assert MSTATUS_SLOT_INDEX == 29
        assert MEPC_SLOT_INDEX == 30


class TestMemoryLayout:
    def test_default_ordering(self):
        layout = MemoryLayout()
        assert layout.text_base < layout.data_base < layout.stack_base
        assert layout.stack_base < layout.context_base

    def test_stack_tops_do_not_overlap(self):
        layout = MemoryLayout()
        tops = [layout.stack_top(i) for i in range(4)]
        assert tops == sorted(set(tops))
        assert tops[1] - tops[0] == layout.stack_words * 4

    def test_context_region_from_layout(self):
        layout = MemoryLayout()
        region = layout.context_region
        assert region.base == layout.context_base
        assert region.max_tasks == layout.max_tasks

    def test_stacks_below_context_region(self):
        layout = MemoryLayout()
        assert layout.stack_top(layout.max_tasks - 1) <= layout.context_base
