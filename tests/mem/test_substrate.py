"""NumPy substrate: backend gating + byte-identity across backends.

Satellite of the lane-engine PR: every bulk path in ``Memory`` (blob
loads, bulk word stores) and the shared raw-store helper behind
``write_word_raw`` / ``flip_bit`` must leave RAM byte-identical whether
the vectorised NumPy path or the bytearray fallback ran.
"""

import pytest

from repro.mem.memory import Memory
from repro.mem.substrate import byte_view, get_numpy, numpy_enabled

BACKENDS = ["1", "0"]


def _backend(monkeypatch, flag):
    monkeypatch.setenv("REPRO_NUMPY", flag)


def test_numpy_enabled_env_gate(monkeypatch):
    monkeypatch.delenv("REPRO_NUMPY", raising=False)
    assert numpy_enabled()
    for off in ("0", "false", "off", "no"):
        monkeypatch.setenv("REPRO_NUMPY", off)
        assert not numpy_enabled()
        assert get_numpy() is None
        assert byte_view(bytearray(8)) is None
    monkeypatch.setenv("REPRO_NUMPY", "1")
    assert numpy_enabled()


def test_byte_view_shares_storage(monkeypatch):
    monkeypatch.delenv("REPRO_NUMPY", raising=False)
    np = get_numpy()
    if np is None:
        pytest.skip("numpy unavailable")
    buffer = bytearray(16)
    view = byte_view(buffer)
    view[3] = 0xAB
    assert buffer[3] == 0xAB
    buffer[4] = 0xCD
    assert int(view[4]) == 0xCD


def _exercise(mem: Memory) -> None:
    """The same raw-write sequence on either backend."""
    mem.load_blob(bytes(range(256)) * 64)            # 16 KiB: vector blit
    mem.load_blob(b"\x5A" * 64)                      # small: slice path
    mem.write_words_raw(0x400, list(range(100)))     # bulk vector store
    mem.write_words_raw(0x800, [0xDEAD_BEEF, -1])    # short scalar store
    mem.write_words_raw(0xC00, [1 << 40])            # overflow: masked
    mem.write_words_raw(0x2000, [-5] * 40)           # negatives, vector
    mem.write_words_raw(0x2800, [1 << 70] * 40)      # int64 overflow
    mem.write_word_raw(0x40, 0x1234_5678)
    for addr, bit in ((0x40, 0), (0x40, 31), (0x404, 7), (0x1000, 13)):
        mem.flip_bit(addr, bit)


@pytest.fixture
def rams(monkeypatch):
    """The exercise sequence run once per backend; yields both RAMs."""
    images = {}
    for flag in BACKENDS:
        _backend(monkeypatch, flag)
        mem = Memory(size=1 << 16)
        _exercise(mem)
        images[flag] = mem
    return images


def test_backends_byte_identical(rams):
    assert bytes(rams["1"].data) == bytes(rams["0"].data)


def test_flip_bit_round_trips_on_both_backends(monkeypatch):
    for flag in BACKENDS:
        _backend(monkeypatch, flag)
        mem = Memory(size=4096)
        mem.write_word_raw(0x100, 0x0F0F_0F0F)
        before = bytes(mem.data)
        new = mem.flip_bit(0x100, 4)
        assert new == 0x0F0F_0F1F
        assert bytes(mem.data) != before
        assert mem.flip_bit(0x100, 4) == 0x0F0F_0F0F
        assert bytes(mem.data) == before


def test_raw_store_helper_fires_code_watch(monkeypatch):
    for flag in BACKENDS:
        _backend(monkeypatch, flag)
        mem = Memory(size=4096)
        seen = []
        mem.code_watch = seen.append
        mem.write_word_raw(0x10, 1)
        mem.flip_bit(0x20, 3)
        assert seen == [0x10, 0x20]


def test_bulk_store_notifies_range_once(monkeypatch):
    for flag in BACKENDS:
        _backend(monkeypatch, flag)
        mem = Memory(size=1 << 16)
        ranges = []
        mem.code_watch_range = lambda addr, nbytes: ranges.append(
            (addr, nbytes))
        mem.write_words_raw(0x200, list(range(64)))
        assert ranges == [(0x200, 256)], flag
        ranges.clear()


def test_load_blob_bounds_checked_on_both_backends(monkeypatch):
    for flag in BACKENDS:
        _backend(monkeypatch, flag)
        mem = Memory(size=4096)
        with pytest.raises(Exception):
            mem.load_blob(b"\x00" * 8192)
