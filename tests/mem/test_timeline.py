"""Memory-port arbitration timeline (core priority, §4.2 opt. 2)."""

from hypothesis import given, strategies as st

from repro.mem.timeline import MemoryTimeline


class TestConsumeFree:
    def test_all_free(self):
        timeline = MemoryTimeline()
        assert timeline.consume_free(10, 3) == 12

    def test_skips_core_busy_cycles(self):
        timeline = MemoryTimeline()
        for cycle in (10, 11, 12):
            timeline.mark_core_busy(cycle)
        # Free cycles from 10: 13, 14, 15.
        assert timeline.consume_free(10, 3) == 15

    def test_interleaved_busy(self):
        timeline = MemoryTimeline()
        for cycle in (5, 7, 9):
            timeline.mark_core_busy(cycle)
        # Free: 4(no, start=5) → 6, 8, 10.
        assert timeline.consume_free(5, 3) == 10

    def test_zero_count(self):
        timeline = MemoryTimeline()
        assert timeline.consume_free(5, 0) == 4

    def test_sequential_consumption_is_monotonic(self):
        timeline = MemoryTimeline()
        first = timeline.consume_free(0, 5)
        second = timeline.consume_free(0, 5)
        assert second > first

    def test_busy_before_start_ignored(self):
        timeline = MemoryTimeline()
        timeline.mark_core_busy(1)
        timeline.mark_core_busy(2)
        assert timeline.consume_free(10, 2) == 11

    def test_counters(self):
        timeline = MemoryTimeline()
        timeline.mark_core_busy(0)
        timeline.consume_free(0, 2)
        assert timeline.core_cycles == 1
        assert timeline.unit_cycles == 2

    def test_reset(self):
        timeline = MemoryTimeline()
        timeline.mark_core_busy(3)
        timeline.consume_free(0, 1)
        timeline.reset()
        assert timeline.consume_free(0, 1) == 0


class TestConsumeFreeUntil:
    def test_fits_before_deadline(self):
        timeline = MemoryTimeline()
        assert timeline.consume_free_until(0, 3, deadline=10) == 2

    def test_deadline_hit_returns_none(self):
        timeline = MemoryTimeline()
        assert timeline.consume_free_until(0, 10, deadline=4) is None

    def test_deadline_stops_scan_at_deadline(self):
        timeline = MemoryTimeline()
        assert timeline.consume_free_until(0, 100, deadline=4) is None
        # Subsequent consumption starts no earlier than the deadline.
        assert timeline.consume_free(0, 1) >= 4

    def test_busy_cycles_do_not_count(self):
        timeline = MemoryTimeline()
        for cycle in range(5):
            timeline.mark_core_busy(cycle)
        assert timeline.consume_free_until(0, 1, deadline=4) is None

    def test_exact_fit_on_deadline(self):
        timeline = MemoryTimeline()
        assert timeline.consume_free_until(0, 5, deadline=4) == 4


class TestProperties:
    @given(busy=st.lists(st.integers(min_value=0, max_value=200),
                         max_size=50),
           start=st.integers(min_value=0, max_value=100),
           count=st.integers(min_value=1, max_value=50))
    def test_completion_never_on_busy_cycle(self, busy, start, count):
        timeline = MemoryTimeline()
        busy_sorted = sorted(busy)
        for cycle in busy_sorted:
            timeline.mark_core_busy(cycle)
        done = timeline.consume_free(start, count)
        assert done not in busy_sorted
        assert done >= start

    @given(busy=st.lists(st.integers(min_value=0, max_value=100),
                         unique=True, max_size=40),
           count=st.integers(min_value=1, max_value=20))
    def test_completion_matches_reference_model(self, busy, count):
        """Completion equals the count-th non-busy cycle from 0."""
        timeline = MemoryTimeline()
        for cycle in sorted(busy):
            timeline.mark_core_busy(cycle)
        done = timeline.consume_free(0, count)
        free = [c for c in range(0, done + 1) if c not in set(busy)]
        assert len(free) == count
        assert free[-1] == done
