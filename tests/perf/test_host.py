"""Host fingerprint + benchmark-record envelope."""

import json

from repro.perf import BENCH_SCHEMA, bench_record, host_info


class TestHostInfo:
    def test_fields_present_and_typed(self):
        info = host_info()
        assert set(info) == {"python", "implementation", "platform",
                             "machine", "cpu_count"}
        assert isinstance(info["python"], str) and info["python"]
        assert isinstance(info["cpu_count"], int)

    def test_json_serialisable(self):
        json.dumps(host_info())


class TestBenchRecord:
    def test_envelope(self):
        record = bench_record("core_speed", {"speedup": 2.0})
        assert record["schema"] == BENCH_SCHEMA
        assert record["bench"] == "core_speed"
        assert record["host"] == host_info()
        assert record["speedup"] == 2.0

    def test_payload_does_not_clobber_envelope(self):
        record = bench_record("x", {"extra": 1})
        assert {"schema", "bench", "host", "extra"} <= set(record)
        json.dumps(record)
