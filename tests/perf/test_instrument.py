"""Simulator-performance instrumentation: reports, attribution, CLI."""

import json

import pytest

from repro.cli import main
from repro.perf import (OpcodeAttributor, compare_reports, format_report,
                        profile_workload)
from repro.rtosunit.config import parse_config
from repro.workloads.suite import workload_by_name


def _profile(**kwargs):
    workload = workload_by_name("yield_pingpong", iterations=2)
    return profile_workload("cv32e40p", parse_config("vanilla"), workload,
                            iterations=2, **kwargs)


class TestProfileWorkload:
    def test_blocks_on_report(self):
        report = _profile(blocks=True)
        assert report.blocks is True
        assert report.instret > 0 and report.cycles > 0
        assert report.wall_s > 0
        assert report.ips > 0 and report.cps > 0
        assert report.counters["fast_instret"] > 0
        assert 0.0 <= report.counters["slow_ratio"] < 1.0

    def test_blocks_off_report(self):
        report = _profile(blocks=False)
        assert report.blocks is False
        assert report.counters["fast_instret"] == 0
        assert report.counters["slow_ratio"] == 1.0

    def test_on_off_cycles_identical(self):
        on = _profile(blocks=True)
        off = _profile(blocks=False)
        assert (on.cycles, on.instret) == (off.cycles, off.instret)
        rendered = compare_reports(on, off)
        assert "identical" in rendered
        assert "DIFFER" not in rendered

    def test_opcode_attribution_forces_exact_path(self):
        report = _profile(blocks=True, opcodes=True)
        # The step hook disables block dispatch; the report says so.
        assert report.blocks is False
        assert report.counters["fast_instret"] == 0
        # A step that takes an interrupt re-fetches the same instruction
        # next step, so counts may exceed retired instructions slightly.
        counted = sum(report.opcode_counts.values())
        assert report.instret <= counted <= report.instret * 1.05
        # The per-class deltas partition the whole simulated timeline.
        assert sum(report.opcode_cycles.values()) == report.cycles
        assert report.opcode_counts.get("alu", 0) > 0

    def test_cprofile_capture(self):
        report = _profile(blocks=True, cprofile=True)
        assert "cumulative" in report.profile_text

    def test_as_dict_serialisable(self):
        json.dumps(_profile(blocks=True).as_dict())

    def test_format_report_mentions_caches(self):
        text = format_report(_profile(blocks=True))
        assert "block cache" in text
        assert "slow-path ratio" in text


class TestOpcodeAttributor:
    def test_trap_cycles_booked_to_trap_bucket(self):
        class FakeStats:
            traps = 0

        class FakeCore:
            cycle = 0
            pc = 0
            stats = FakeStats()

            def _fetch(self, pc):
                raise RuntimeError("no memory")

        attributor = OpcodeAttributor()
        core = FakeCore()
        attributor(core)           # first instruction: class unknown
        core.cycle = 10
        core.stats.traps = 1       # it trapped
        attributor(core)
        assert attributor.cycles.get("trap") == 10
        core.cycle = 14
        attributor.finish(core)
        assert attributor.cycles.get("unknown") == 4
        # finish() is idempotent.
        attributor.finish(core)
        assert attributor.cycles.get("unknown") == 4


class TestProfileCli:
    def test_profile_verb(self, capsys):
        assert main(["profile", "--workload", "yield_pingpong",
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "blocks=on" in out
        assert "slow-path ratio" in out

    def test_profile_compare_and_json(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        assert main(["profile", "--workload", "yield_pingpong",
                     "--iterations", "2", "--compare",
                     "--perf-json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        record = json.loads(path.read_text())
        assert record["schema"] == "repro-bench/v1"
        assert record["bench"] == "profile"
        assert record["baseline"]["blocks"] is False
        assert record["speedup"] > 0

    def test_profile_opcodes(self, capsys):
        assert main(["profile", "--workload", "yield_pingpong",
                     "--iterations", "2", "--opcodes"]) == 0
        out = capsys.readouterr().out
        assert "cycles by opcode class" in out
        # The attributor forces the exact path and the output says so.
        assert "blocks=off" in out

    def test_profile_no_blocks(self, capsys):
        assert main(["profile", "--workload", "yield_pingpong",
                     "--iterations", "2", "--no-blocks"]) == 0
        assert "blocks=off" in capsys.readouterr().out
