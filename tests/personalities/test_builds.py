"""Per-personality kernel builds: determinism, execution, warm parity."""

import pytest

from repro.harness.experiment import run_workload
from repro.kernel.builder import KernelBuilder, reset_program_cache
from repro.personalities import personality_names
from repro.rtosunit.config import parse_config
from repro.snapshot import reset_store, store
from repro.workloads import ladder_irq, ladder_jitter, ladder_switch

ALL_QUALIFIED = ("vanilla", "vanilla@scm", "vanilla@echronos")


@pytest.fixture(autouse=True)
def fresh_state(monkeypatch):
    monkeypatch.delenv("REPRO_SNAPSHOT", raising=False)
    reset_store()
    reset_program_cache()
    yield
    reset_store()
    reset_program_cache()


def _result_key(result):
    return (result.latencies,
            [(s.trigger_cycle, s.entry_cycle, s.mret_cycle)
             for s in result.switches],
            result.cycles, result.instret)


def _source(config_name: str) -> str:
    workload = ladder_switch(4)
    builder = KernelBuilder(config=parse_config(config_name),
                            objects=workload.objects,
                            tick_period=workload.tick_period)
    return builder.source()


class TestRenderedSource:
    @pytest.mark.parametrize("config_name", ALL_QUALIFIED)
    def test_two_renders_byte_identical(self, config_name):
        assert _source(config_name) == _source(config_name)

    def test_personalities_render_distinct_kernels(self):
        sources = {name: _source(name) for name in ALL_QUALIFIED}
        assert len(set(sources.values())) == 3

    def test_scm_kernel_has_bitmap_not_lists(self):
        source = _source("vanilla@scm")
        assert "ready_map:" in source
        assert "prio_table:" in source
        assert "ready_lists:" not in source

    def test_echronos_kernel_has_run_flags(self):
        source = _source("vanilla@echronos")
        assert "run_flags:" in source
        assert "ec_task_count:" in source
        assert "ready_lists:" not in source


class TestExecution:
    @pytest.mark.parametrize("config_name", ALL_QUALIFIED)
    @pytest.mark.parametrize("factory", (ladder_switch, ladder_irq,
                                         ladder_jitter))
    def test_deterministic_rerun(self, config_name, factory):
        config = parse_config(config_name)
        first = run_workload("cv32e40p", config, factory(4))
        second = run_workload("cv32e40p", config, factory(4))
        assert _result_key(first) == _result_key(second)

    def test_scm_resolver_beats_freertos_scan(self):
        # The constant-time bitmap resolver is the personality's point:
        # same workload, same core, lower switch latency.
        freertos = run_workload("cv32e40p", parse_config("vanilla"),
                                ladder_switch(6))
        scm = run_workload("cv32e40p", parse_config("vanilla@scm"),
                           ladder_switch(6))
        assert scm.stats.mean < freertos.stats.mean

    def test_echronos_pays_for_cooperation(self):
        # The circular table scan plus explicit yields cost cycles.
        freertos = run_workload("cv32e40p", parse_config("vanilla"),
                                ladder_switch(6))
        echronos = run_workload("cv32e40p", parse_config("vanilla@echronos"),
                                ladder_switch(6))
        assert echronos.stats.mean > freertos.stats.mean


class TestWarmStart:
    @pytest.mark.parametrize("config_name", ALL_QUALIFIED)
    def test_warm_equals_cold(self, config_name):
        config = parse_config(config_name)
        cold = run_workload("cv32e40p", config, ladder_switch(4))
        warm = run_workload("cv32e40p", config, ladder_switch(4))
        assert store().stats.final_hits == 1
        assert _result_key(cold) == _result_key(warm)

    def test_personalities_do_not_share_warm_state(self):
        for config_name in ALL_QUALIFIED:
            run_workload("cv32e40p", parse_config(config_name),
                         ladder_switch(4))
        # Three distinct kernels -> three snapshot entries, zero hits.
        assert len(store()) == 3
        assert store().stats.final_hits == 0
        assert store().stats.misses == 3
