"""Personality separation in every content-addressed cache.

The regression this file pins: two personalities may render *different*
kernels for the *same* config letters and workload, so any cache keyed
without the kernel fingerprint could serve one personality's results to
another. Both the warm-start snapshot store and the DSE result cache key
on :func:`repro.personalities.kernel_fingerprint`.
"""

import itertools

from repro.dse.cache import point_key
from repro.dse.executor import GridPoint
from repro.kernel.builder import KernelBuilder
from repro.mem.regions import MemoryLayout
from repro.personalities import personality_names
from repro.rtosunit.config import parse_config
from repro.snapshot.cache import snapshot_key
from repro.workloads import ladder_switch


def _qualified(personality: str, base: str = "vanilla") -> str:
    return base if personality == "freertos" else f"{base}@{personality}"


class TestSnapshotKeys:
    def test_personalities_never_collide(self):
        workload = ladder_switch(4)
        layout = MemoryLayout()
        keys = {}
        for personality in personality_names():
            config = parse_config(_qualified(personality))
            builder = KernelBuilder(config=config,
                                    objects=workload.objects,
                                    layout=layout,
                                    tick_period=workload.tick_period)
            keys[personality] = snapshot_key("cv32e40p", config, layout,
                                             workload, builder.source())
        for a, b in itertools.combinations(keys, 2):
            assert keys[a] != keys[b], (a, b)

    def test_key_contains_kernel_fingerprint(self):
        from repro.personalities import kernel_fingerprint

        config = parse_config("vanilla@scm")
        workload = ladder_switch(4)
        key = snapshot_key("cv32e40p", config, MemoryLayout(), workload,
                           "source")
        assert kernel_fingerprint(config) in key


class TestPointKeys:
    def test_personalities_never_collide(self):
        keys = {}
        for personality in personality_names():
            point = GridPoint(core="cv32e40p",
                              config=_qualified(personality),
                              workload="ladder_switch", iterations=4,
                              seed=0)
            keys[personality] = point_key(point, fingerprint="fixed")
        for a, b in itertools.combinations(keys, 2):
            assert keys[a] != keys[b], (a, b)

    def test_same_personality_same_key(self):
        point = GridPoint(core="cv32e40p", config="vanilla@scm",
                          workload="ladder_switch", iterations=4, seed=0)
        assert point_key(point, "fixed") == point_key(point, "fixed")

    def test_kernel_fingerprint_participates(self, monkeypatch):
        # Even with an identical logical point, a changed kernel
        # fingerprint must change the key: the kernel dimension is part
        # of the address, not advisory metadata.
        import repro.personalities as personalities

        point = GridPoint(core="cv32e40p", config="vanilla",
                          workload="ladder_switch", iterations=4, seed=0)
        before = point_key(point, "fixed")
        monkeypatch.setattr(personalities, "kernel_fingerprint_for_name",
                            lambda name: "0" * 16)
        assert point_key(point, "fixed") != before
