"""The latency-ladder report: shape, determinism, service parity."""

import json

import pytest

from repro.cores import CORE_NAMES
from repro.errors import AnalysisError
from repro.personalities.ladder import (
    LADDER_WORKLOAD_NAMES,
    LadderSpec,
    config_name_for,
    ladder_cells,
    ladder_from_records,
    ladder_markdown,
    ladder_report,
    ladder_requests,
    supported_config_names,
    write_ladder,
)

QUICK = LadderSpec(cores=("cv32e40p",), configs=("vanilla",), iterations=4)


def _canon(report: dict) -> str:
    return json.dumps(report, sort_keys=True)


class TestSpec:
    def test_defaults_cover_everything(self):
        spec = LadderSpec()
        assert spec.cores == tuple(CORE_NAMES)
        assert spec.configs == ("vanilla", "SL", "SLT")
        assert spec.personalities == ("echronos", "freertos", "scm")

    def test_quick_keeps_all_personalities_and_cores(self):
        spec = LadderSpec.quick()
        assert spec.cores == tuple(CORE_NAMES)
        assert spec.personalities == ("echronos", "freertos", "scm")
        assert spec.configs == ("vanilla",)

    def test_config_name_for(self):
        assert config_name_for("SL", "freertos") == "SL"
        assert config_name_for("SL", "scm") == "SL@scm"


class TestCells:
    def test_full_grid_shape(self):
        cells = ladder_cells(LadderSpec())
        assert len(cells) == 3 * 3 * 3  # cores x configs x personalities

    def test_hardware_configs_unsupported_off_freertos(self):
        cells = {(c["config"], c["personality"]): c
                 for c in ladder_cells(LadderSpec(cores=("cv32e40p",)))}
        assert cells[("SLT", "freertos")]["supported"]
        for personality in ("scm", "echronos"):
            cell = cells[("SLT", personality)]
            assert not cell["supported"]
            assert "software scheduler" in cell["reason"]

    def test_supported_names_deduplicated(self):
        names = supported_config_names(LadderSpec())
        assert len(names) == len(set(names))
        assert "SLT@scm" not in names
        assert "SL@echronos" in names


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return ladder_report(QUICK)

    def test_every_cell_present(self, report):
        rows = {(r["core"], r["config"], r["personality"])
                for r in report["rows"]}
        assert rows == {("cv32e40p", "vanilla", p)
                        for p in ("echronos", "freertos", "scm")}

    def test_rows_carry_all_three_metrics(self, report):
        for row in report["rows"]:
            assert row["switch"]["count"] > 0
            assert row["irq_entry"]["count"] > 0
            assert row["jitter"] >= 0

    def test_deterministic_across_runs(self, report):
        assert _canon(ladder_report(QUICK)) == _canon(report)

    def test_jobs_parity(self, report):
        assert _canon(ladder_report(QUICK, jobs=2)) == _canon(report)

    def test_markdown_renders_every_row(self, report):
        text = ladder_markdown(report)
        assert "## cv32e40p" in text
        for personality in ("echronos", "freertos", "scm"):
            assert f"| vanilla | {personality} |" in text

    def test_markdown_marks_unsupported(self):
        spec = LadderSpec(cores=("cv32e40p",), configs=("SLT",),
                          personalities=("freertos", "scm"), iterations=4)
        text = ladder_markdown(ladder_report(spec))
        assert "unsupported:" in text

    def test_envelope(self, report, tmp_path):
        record = write_ladder(report, json_path=tmp_path / "L.json",
                              md_path=tmp_path / "L.md")
        assert record["schema"] == "repro-bench/v1"
        assert record["bench"] == "ladder"
        on_disk = json.loads((tmp_path / "L.json").read_text())
        assert on_disk["rows"] == report["rows"]
        assert on_disk["bench"] == "ladder"
        assert "## cv32e40p" in (tmp_path / "L.md").read_text()

    def test_write_is_byte_identical(self, report, tmp_path):
        write_ladder(report, json_path=tmp_path / "a.json")
        write_ladder(report, json_path=tmp_path / "b.json")
        assert (tmp_path / "a.json").read_bytes() == \
            (tmp_path / "b.json").read_bytes()


class TestServiceParity:
    def test_requests_cover_supported_cells(self):
        requests = ladder_requests(QUICK)
        assert len(requests) == 3 * len(LADDER_WORKLOAD_NAMES)
        assert {r.config for r in requests} == \
            {"vanilla", "vanilla@scm", "vanilla@echronos"}
        for request in requests:
            request.validate()
            assert request.seed == QUICK.seed

    def test_report_from_service_records_matches_sweep(self):
        import asyncio

        from repro.service.server import SimulationService

        async def run_jobs():
            service = SimulationService(jobs=2)
            service.start()
            try:
                return [await service.submit_and_wait(request)
                        for request in ladder_requests(QUICK)]
            finally:
                await service.stop()

        results = asyncio.run(run_jobs())
        from_service = ladder_from_records(QUICK,
                                           [r.run for r in results])
        assert _canon(from_service) == _canon(ladder_report(QUICK))

    def test_missing_cell_is_loud(self):
        with pytest.raises(AnalysisError, match="no ladder runs"):
            ladder_from_records(QUICK, [])
