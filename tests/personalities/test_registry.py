"""Personality registry, config integration and kernel fingerprints."""

import pytest

from repro.errors import ConfigurationError
from repro.personalities import (
    DEFAULT_PERSONALITY,
    PERSONALITIES,
    kernel_fingerprint,
    kernel_fingerprint_for_name,
    personality_by_name,
    personality_names,
)
from repro.rtosunit.config import parse_config


class TestRegistry:
    def test_three_personalities(self):
        assert personality_names() == ("echronos", "freertos", "scm")
        assert DEFAULT_PERSONALITY == "freertos"

    def test_lookup(self):
        for name in personality_names():
            assert personality_by_name(name).name == name

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigurationError,
                           match="echronos, freertos, scm"):
            personality_by_name("zephyr")

    def test_did_you_mean_suggestion(self):
        with pytest.raises(ConfigurationError,
                           match="did you mean 'freertos'"):
            personality_by_name("freertoss")
        with pytest.raises(ConfigurationError, match="did you mean 'scm'"):
            personality_by_name("smc")

    def test_summaries_present(self):
        for personality in PERSONALITIES.values():
            assert personality.summary


class TestConfigIntegration:
    def test_suffix_round_trip(self):
        config = parse_config("SL@scm")
        assert config.personality == "scm"
        assert config.base_name == "SL"
        assert config.name == "SL@scm"
        assert parse_config(config.name) == config

    def test_default_personality_has_no_suffix(self):
        config = parse_config("vanilla")
        assert config.personality == "freertos"
        assert config.name == "vanilla"

    def test_suffix_normalised(self):
        assert parse_config("vanilla@ SCM ").personality == "scm"

    def test_unknown_suffix_suggests(self):
        with pytest.raises(ConfigurationError,
                           match="did you mean 'echronos'"):
            parse_config("vanilla@echrono")

    @pytest.mark.parametrize("name", ("T@scm", "Y@scm", "SLT@echronos",
                                      "SLTYP@scm"))
    def test_hardware_scheduling_is_freertos_only(self, name):
        with pytest.raises(ConfigurationError, match="software scheduler"):
            parse_config(name)

    def test_cv32rt_is_freertos_only(self):
        with pytest.raises(ConfigurationError):
            parse_config("CV32RT@scm")


class TestKernelFingerprint:
    def test_pairwise_distinct(self):
        prints = {name: PERSONALITIES[name].fingerprint()
                  for name in personality_names()}
        assert len(set(prints.values())) == len(prints)

    def test_stable_across_calls(self):
        for name in personality_names():
            personality = personality_by_name(name)
            assert personality.fingerprint() == personality.fingerprint()

    def test_config_and_name_paths_agree(self):
        for name in ("vanilla", "vanilla@scm", "SL@echronos"):
            config = parse_config(name)
            assert kernel_fingerprint(config) == \
                kernel_fingerprint_for_name(name)

    def test_unqualified_name_is_freertos(self):
        assert kernel_fingerprint_for_name("SLT") == \
            PERSONALITIES["freertos"].fingerprint()
