"""RTOSUnit configuration rules (§4) and the letter naming scheme."""

import pytest

from repro.errors import ConfigurationError
from repro.rtosunit.config import EVALUATED_CONFIGS, RTOSUnitConfig, parse_config


class TestValidity:
    def test_vanilla(self):
        assert RTOSUnitConfig().is_vanilla

    def test_load_requires_store(self):
        with pytest.raises(ConfigurationError):
            RTOSUnitConfig(load=True)

    def test_dirty_requires_store(self):
        with pytest.raises(ConfigurationError):
            RTOSUnitConfig(dirty=True)

    def test_omit_requires_load(self):
        with pytest.raises(ConfigurationError):
            RTOSUnitConfig(store=True, omit=True)

    def test_preload_requires_slt(self):
        with pytest.raises(ConfigurationError):
            RTOSUnitConfig(store=True, load=True, preload=True)

    def test_preload_incompatible_with_dirty(self):
        """§4.7: preloading is incompatible with the dirty-bit option."""
        with pytest.raises(ConfigurationError):
            RTOSUnitConfig(store=True, load=True, sched=True,
                           preload=True, dirty=True)

    def test_cv32rt_standalone(self):
        with pytest.raises(ConfigurationError):
            RTOSUnitConfig(cv32rt=True, store=True)

    def test_negative_list_length(self):
        with pytest.raises(ConfigurationError):
            RTOSUnitConfig(list_length=-1)

    def test_sched_needs_list(self):
        with pytest.raises(ConfigurationError):
            RTOSUnitConfig(sched=True, list_length=0)

    def test_all_evaluated_configs_valid(self):
        for name in EVALUATED_CONFIGS:
            parse_config(name)  # must not raise


class TestDerivedProperties:
    def test_switch_rf_only_for_store_without_load(self):
        assert RTOSUnitConfig(store=True).uses_switch_rf
        assert not RTOSUnitConfig(store=True, load=True).uses_switch_rf
        assert not RTOSUnitConfig(sched=True).uses_switch_rf

    def test_set_context_id_without_sched(self):
        assert RTOSUnitConfig(store=True).uses_set_context_id
        assert not RTOSUnitConfig(store=True, sched=True).uses_set_context_id

    def test_timer_autoreset_with_sched(self):
        assert RTOSUnitConfig(sched=True).hw_timer_autoreset
        assert not RTOSUnitConfig(store=True).hw_timer_autoreset


class TestNaming:
    @pytest.mark.parametrize("name", EVALUATED_CONFIGS)
    def test_name_round_trip(self, name):
        assert parse_config(name).name == name

    def test_split_spelling(self):
        config = RTOSUnitConfig(store=True, load=True, sched=True,
                                preload=True)
        assert config.name == "SPLIT"

    def test_parse_case_insensitive(self):
        assert parse_config("slt").name == "SLT"
        assert parse_config("Vanilla").is_vanilla
        assert parse_config("cv32rt").cv32rt

    def test_parse_rejects_unknown_letter(self):
        with pytest.raises(ConfigurationError):
            parse_config("SX")

    def test_parse_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            parse_config("SS")

    def test_parse_list_length(self):
        assert parse_config("T", list_length=64).list_length == 64

    def test_str(self):
        assert str(parse_config("SDLOT")) == "SDLOT"
