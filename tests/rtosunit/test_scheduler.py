"""Hardware scheduler semantics (§4.4, Fig. 5), incl. a model check."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.rtosunit.scheduler import HardwareScheduler


class TestReadyList:
    def test_priority_order(self):
        sched = HardwareScheduler(length=8)
        sched.add_ready(0, priority=1)
        sched.add_ready(1, priority=3)
        sched.add_ready(2, priority=2)
        assert sched.ready_ids() == [1, 2, 0]

    def test_fifo_within_priority(self):
        sched = HardwareScheduler(length=8)
        for task in (0, 1, 2):
            sched.add_ready(task, priority=2)
        assert sched.ready_ids() == [0, 1, 2]

    def test_get_next_round_robin(self):
        """The running task rotates to the tail of its priority class."""
        sched = HardwareScheduler(length=8)
        sched.add_ready(0, priority=1)
        sched.add_ready(1, priority=1)
        task, _ = sched.get_next(current_task_id=0)
        assert task == 1
        task, _ = sched.get_next(current_task_id=1)
        assert task == 0

    def test_get_next_prefers_higher_priority(self):
        sched = HardwareScheduler(length=8)
        sched.add_ready(0, priority=1)
        sched.add_ready(1, priority=1)
        sched.add_ready(9, priority=5)
        task, _ = sched.get_next(current_task_id=0)
        assert task == 9

    def test_get_next_when_current_removed(self):
        sched = HardwareScheduler(length=8)
        sched.add_ready(0, priority=1)
        sched.add_ready(1, priority=1)
        sched.rm_task(0)
        task, _ = sched.get_next(current_task_id=0)
        assert task == 1

    def test_single_task_reselected(self):
        sched = HardwareScheduler(length=8)
        sched.add_ready(3, priority=0)
        task, _ = sched.get_next(current_task_id=3)
        assert task == 3

    def test_empty_get_raises(self):
        with pytest.raises(SimulationError):
            HardwareScheduler(length=8).get_next()

    def test_overflow_raises_and_flags(self):
        sched = HardwareScheduler(length=2)
        sched.add_ready(0, 1)
        sched.add_ready(1, 1)
        with pytest.raises(SimulationError):
            sched.add_ready(2, 1)
        assert sched.overflowed


class TestDelayList:
    def test_delay_expiry_moves_to_ready(self):
        sched = HardwareScheduler(length=8)
        sched.add_delay(5, priority=2, delay=2)
        assert sched.on_tick() == 0
        assert sched.on_tick() == 1
        assert sched.ready_ids() == [5]
        assert sched.delayed_ids() == []

    def test_delay_ordering_by_remaining(self):
        sched = HardwareScheduler(length=8)
        sched.add_delay(0, priority=1, delay=5)
        sched.add_delay(1, priority=1, delay=2)
        assert sched.delayed_ids() == [1, 0]

    def test_delay_tie_broken_by_priority(self):
        sched = HardwareScheduler(length=8)
        sched.add_delay(0, priority=1, delay=3)
        sched.add_delay(1, priority=4, delay=3)
        assert sched.delayed_ids() == [1, 0]

    def test_simultaneous_release_priority_order(self):
        sched = HardwareScheduler(length=8)
        sched.add_delay(0, priority=1, delay=1)
        sched.add_delay(1, priority=3, delay=1)
        assert sched.on_tick() == 2
        assert sched.ready_ids() == [1, 0]

    def test_released_task_keeps_priority(self):
        sched = HardwareScheduler(length=8)
        sched.add_ready(9, priority=2)
        sched.add_delay(1, priority=4, delay=1)
        sched.on_tick()
        assert sched.ready_ids()[0] == 1

    def test_non_positive_delay_rejected(self):
        with pytest.raises(SimulationError):
            HardwareScheduler(length=8).add_delay(0, priority=1, delay=0)

    def test_rm_task_clears_both_lists(self):
        sched = HardwareScheduler(length=8)
        sched.add_ready(0, 1)
        sched.add_delay(1, 1, 5)
        sched.rm_task(0)
        sched.rm_task(1)
        assert sched.ready_ids() == []
        assert sched.delayed_ids() == []


class TestSettleTiming:
    def test_get_stalls_until_sorted(self):
        """A GET right after an insert waits for the bubble sort."""
        sched = HardwareScheduler(length=8)
        sched.add_ready(0, priority=1, cycle=100)
        _, ready_cycle = sched.get_next(cycle=101, current_task_id=None)
        assert ready_cycle == 108  # 100 + list length

    def test_get_after_settle_is_immediate(self):
        sched = HardwareScheduler(length=8)
        sched.add_ready(0, priority=1, cycle=100)
        _, ready_cycle = sched.get_next(cycle=150, current_task_id=None)
        assert ready_cycle == 150

    def test_settle_scales_with_length(self):
        sched = HardwareScheduler(length=64)
        sched.add_ready(0, priority=1, cycle=0)
        _, ready_cycle = sched.get_next(cycle=0, current_task_id=None)
        assert ready_cycle == 64


class TestPreloadPrediction:
    def test_peek_next_skips_current(self):
        sched = HardwareScheduler(length=8)
        sched.add_ready(0, 1)
        sched.add_ready(1, 1)
        assert sched.peek_next(current_task_id=0) == 1

    def test_peek_next_alone(self):
        sched = HardwareScheduler(length=8)
        sched.add_ready(0, 1)
        assert sched.peek_next(current_task_id=0) == 0

    def test_peek_next_empty(self):
        assert HardwareScheduler(length=8).peek_next(0) is None


class _ModelScheduler:
    """Reference model: plain Python lists, FreeRTOS semantics."""

    def __init__(self):
        self.ready = []   # (priority, seq, task)
        self.delayed = {}  # task -> (priority, remaining, seq)
        self.seq = 0

    def add_ready(self, task, priority):
        self.seq += 1
        self.ready.append((priority, self.seq, task))

    def add_delay(self, task, priority, delay):
        self.seq += 1
        self.delayed[task] = (priority, delay, self.seq)

    def rm_task(self, task):
        self.ready = [e for e in self.ready if e[2] != task]
        self.delayed.pop(task, None)

    def tick(self):
        # Expired tasks wake in delay-list order: remaining delay, then
        # priority, then insertion order — FreeRTOS keeps insertion
        # order among equal wake times, not task-id order.
        still_waiting = {}
        for task, (priority, remaining, seq) in sorted(
                self.delayed.items(),
                key=lambda kv: (kv[1][1], -kv[1][0], kv[1][2])):
            if remaining - 1 <= 0:
                self.add_ready(task, priority)
            else:
                still_waiting[task] = (priority, remaining - 1, seq)
        self.delayed = still_waiting

    def get_next(self, current):
        for index, (priority, _, task) in enumerate(
                sorted(self.ready, key=lambda e: (-e[0], e[1]))):
            del index
            if task == current:
                self.ready = [e for e in self.ready if e[2] != task]
                self.add_ready(task, priority)
                break
        ordered = sorted(self.ready, key=lambda e: (-e[0], e[1]))
        return ordered[0][2]


_ops = st.lists(st.tuples(st.sampled_from(["ready", "delay", "rm", "tick",
                                           "get"]),
                          st.integers(0, 5),   # task
                          st.integers(0, 7),   # priority
                          st.integers(1, 4)),  # delay
                max_size=40)


class TestAgainstModel:
    @settings(max_examples=200, deadline=None)
    @given(ops=_ops)
    def test_matches_reference_model(self, ops):
        real = HardwareScheduler(length=16)
        model = _ModelScheduler()
        current = None
        in_real = set()
        delayed = set()
        for op, task, priority, delay in ops:
            if op == "ready" and task not in in_real | delayed:
                real.add_ready(task, priority)
                model.add_ready(task, priority)
                in_real.add(task)
            elif op == "delay" and task not in in_real | delayed:
                real.add_delay(task, priority, delay)
                model.add_delay(task, priority, delay)
                delayed.add(task)
            elif op == "rm":
                real.rm_task(task)
                model.rm_task(task)
                in_real.discard(task)
                delayed.discard(task)
            elif op == "tick":
                real.on_tick()
                model.tick()
                in_real |= {t for t in delayed
                            if t in real.ready_ids()}
                delayed -= in_real
            elif op == "get" and in_real:
                got = real.get_next(current_task_id=current)[0]
                expected = model.get_next(current)
                assert got == expected
                current = got
            assert set(real.ready_ids()) == {e[2] for e in model.ready}
            assert set(real.delayed_ids()) == set(model.delayed)
