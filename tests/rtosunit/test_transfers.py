"""FSM transfer timing: serialisation and arbitration properties."""

from hypothesis import given, settings, strategies as st

from repro.isa import csr as csrmod
from repro.isa.csr import CSRFile
from repro.isa.custom import CustomOp
from repro.mem.memory import Memory
from repro.mem.regions import ContextRegion
from repro.mem.timeline import MemoryTimeline
from repro.rtosunit.config import parse_config
from repro.rtosunit.unit import RTOSUnit


class _StubCore:
    def __init__(self):
        self.app_bank = [0] * 32
        self.csr = CSRFile()
        self.dirty_mask = 0


def make_unit(config_name="SL"):
    unit = RTOSUnit(parse_config(config_name), Memory(size=1 << 17),
                    MemoryTimeline(), ContextRegion(base=0x8000,
                                                    max_tasks=8))
    unit.attach(_StubCore())
    return unit


class TestSerialisation:
    @settings(max_examples=50, deadline=None)
    @given(busy=st.lists(st.integers(0, 200), unique=True, max_size=60),
           entry=st.integers(0, 40), set_at=st.integers(41, 80),
           mret_at=st.integers(81, 120))
    def test_restore_never_completes_before_store(self, busy, entry,
                                                  set_at, mret_at):
        """The single port serialises the FSMs: restore completion is
        at least 62 transfer slots after interrupt entry."""
        unit = make_unit("SL")
        unit.boot(0)
        for cycle in sorted(busy):
            unit.timeline.mark_core_busy(cycle)
        unit.on_interrupt_entry(entry, csrmod.CAUSE_MSI)
        unit.exec_custom(CustomOp.SET_CONTEXT_ID, 1, 0, set_at)
        done = unit.on_mret(mret_at)
        # 62 words must fit between entry and completion.
        free_slots = [c for c in range(entry + 1, done + 1)
                      if c not in set(busy)]
        assert len(free_slots) >= 62
        assert done >= mret_at or done >= entry + 62

    @settings(max_examples=30, deadline=None)
    @given(entry=st.integers(0, 50), query=st.integers(0, 300))
    def test_switch_rf_monotone_in_query_time(self, entry, query):
        """Waiting longer can never make SWITCH_RF complete earlier."""
        unit = make_unit("S")
        unit.boot(0)
        unit.on_interrupt_entry(entry, csrmod.CAUSE_MSI)
        result = unit.exec_custom(CustomOp.SWITCH_RF, 0, 0,
                                  max(query, entry + 1))
        assert result.complete_cycle >= entry + 31  # 31 words minimum

    def test_back_to_back_switches_keep_order(self):
        """A second switch's transfers queue behind the first's."""
        unit = make_unit("SL")
        unit.boot(0)
        unit.on_interrupt_entry(0, csrmod.CAUSE_MSI)
        unit.exec_custom(CustomOp.SET_CONTEXT_ID, 1, 0, 5)
        first_done = unit.on_mret(10)
        unit.on_interrupt_entry(first_done + 5, csrmod.CAUSE_MSI)
        unit.exec_custom(CustomOp.SET_CONTEXT_ID, 0, 0, first_done + 10)
        second_done = unit.on_mret(first_done + 15)
        assert second_done >= first_done + 62


class TestArbitrationPriority:
    def test_core_busy_cycles_delay_the_unit(self):
        """Port cycles the core uses are unavailable to the FSMs."""
        idle_unit = make_unit("SL")
        idle_unit.boot(0)
        idle_unit.on_interrupt_entry(0, csrmod.CAUSE_MSI)
        idle_unit.exec_custom(CustomOp.SET_CONTEXT_ID, 1, 0, 1)
        idle_done = idle_unit.on_mret(2)

        busy_unit = make_unit("SL")
        busy_unit.boot(0)
        for cycle in range(0, 40):
            busy_unit.timeline.mark_core_busy(cycle)
        busy_unit.on_interrupt_entry(0, csrmod.CAUSE_MSI)
        busy_unit.exec_custom(CustomOp.SET_CONTEXT_ID, 1, 0, 1)
        busy_done = busy_unit.on_mret(2)
        assert busy_done > idle_done

    def test_word_cost_hook_scales_transfer_time(self):
        """NaxRiscv-style per-word costs (cache misses) stretch the FSM."""
        cheap = make_unit("SL")
        cheap.boot(0)
        cheap.on_interrupt_entry(0, csrmod.CAUSE_MSI)
        cheap.exec_custom(CustomOp.SET_CONTEXT_ID, 1, 0, 1)
        cheap_done = cheap.on_mret(2)

        expensive = make_unit("SL")
        expensive.word_cost = lambda addr, is_write: 3
        expensive.boot(0)
        expensive.on_interrupt_entry(0, csrmod.CAUSE_MSI)
        expensive.exec_custom(CustomOp.SET_CONTEXT_ID, 1, 0, 1)
        expensive_done = expensive.on_mret(2)
        assert expensive_done > cheap_done * 2
