"""RTOSUnit functional behaviour with a stub core attached."""

import pytest

from repro.errors import SimulationError
from repro.isa import csr as csrmod
from repro.isa.csr import CSRFile
from repro.isa.custom import CustomOp
from repro.mem.memory import Memory
from repro.mem.regions import (
    CONTEXT_REG_ORDER,
    ContextRegion,
    MEPC_SLOT_INDEX,
    MSTATUS_SLOT_INDEX,
)
from repro.mem.timeline import MemoryTimeline
from repro.rtosunit.config import parse_config
from repro.rtosunit.unit import CV32RT_HW_REGS, RTOSUnit


class _StubCore:
    def __init__(self):
        self.app_bank = [0] * 32
        self.csr = CSRFile()
        self.dirty_mask = 0


def make_unit(config_name, list_length=8):
    config = parse_config(config_name, list_length=list_length)
    memory = Memory(size=1 << 17)
    timeline = MemoryTimeline()
    region = ContextRegion(base=0x8000, max_tasks=8)
    unit = RTOSUnit(config, memory, timeline, region)
    core = _StubCore()
    unit.attach(core)
    return unit, core


class TestStoreFSM:
    def test_store_writes_context_words(self):
        unit, core = make_unit("S")
        for reg in range(32):
            core.app_bank[reg] = 0x100 + reg
        core.csr.write(csrmod.MSTATUS, 0x1888)
        core.csr.write(csrmod.MEPC, 0x4444)
        unit.boot(3)
        unit.on_interrupt_entry(cycle=100, cause=csrmod.CAUSE_MSI)
        slot = unit.region.slot_addr(3)
        for index, reg in enumerate(CONTEXT_REG_ORDER):
            assert unit.memory.read_word_raw(slot + 4 * index) == 0x100 + reg
        assert unit.memory.read_word_raw(
            slot + 4 * MSTATUS_SLOT_INDEX) == 0x1888
        assert unit.memory.read_word_raw(slot + 4 * MEPC_SLOT_INDEX) == 0x4444

    def test_store_before_boot_raises(self):
        unit, _ = make_unit("S")
        with pytest.raises(SimulationError):
            unit.on_interrupt_entry(0, csrmod.CAUSE_MSI)

    def test_store_skips_gp_tp_zero(self):
        unit, core = make_unit("S")
        unit.boot(0)
        core.app_bank[3] = 0xBAD  # gp
        unit.on_interrupt_entry(0, csrmod.CAUSE_MSI)
        slot_words = [unit.memory.read_word_raw(
            unit.region.slot_addr(0) + 4 * i) for i in range(31)]
        assert 0xBAD not in slot_words

    def test_switch_rf_waits_for_store(self):
        unit, _ = make_unit("S")
        unit.boot(0)
        unit.on_interrupt_entry(cycle=10, cause=csrmod.CAUSE_MSI)
        result = unit.exec_custom(CustomOp.SWITCH_RF, 0, 0, cycle=12)
        # 31 words occupy cycles 11..41 on an otherwise idle port.
        assert result.complete_cycle >= 41
        assert result.switch_banks

    def test_switch_rf_after_long_scheduler_is_free(self):
        unit, _ = make_unit("S")
        unit.boot(0)
        unit.on_interrupt_entry(cycle=10, cause=csrmod.CAUSE_MSI)
        result = unit.exec_custom(CustomOp.SWITCH_RF, 0, 0, cycle=500)
        assert result.complete_cycle == 500


class TestRestoreFSM:
    def test_set_context_id_loads_registers(self):
        unit, core = make_unit("SL")
        unit.boot(0)
        slot = unit.region.slot_addr(2)
        for index, reg in enumerate(CONTEXT_REG_ORDER):
            unit.memory.write_word_raw(slot + 4 * index, 0x900 + reg)
        unit.memory.write_word_raw(slot + 4 * MSTATUS_SLOT_INDEX, 0x1880)
        unit.memory.write_word_raw(slot + 4 * MEPC_SLOT_INDEX, 0x1234)
        unit.on_interrupt_entry(0, csrmod.CAUSE_MSI)
        unit.exec_custom(CustomOp.SET_CONTEXT_ID, 2, 0, cycle=50)
        for reg in CONTEXT_REG_ORDER:
            assert core.app_bank[reg] == 0x900 + reg
        assert core.csr.read(csrmod.MEPC) == 0x1234
        assert unit.current_task_id == 2

    def test_mret_stalls_for_restore(self):
        unit, _ = make_unit("SL")
        unit.boot(0)
        unit.on_interrupt_entry(cycle=0, cause=csrmod.CAUSE_MSI)
        unit.exec_custom(CustomOp.SET_CONTEXT_ID, 1, 0, cycle=10)
        done = unit.on_mret(cycle=15)
        # Store (31) then restore (31) serialised over the single port.
        assert done >= 62

    def test_store_then_restore_are_serialised(self):
        unit, _ = make_unit("SL")
        unit.boot(0)
        unit.on_interrupt_entry(cycle=0, cause=csrmod.CAUSE_MSI)
        unit.exec_custom(CustomOp.SET_CONTEXT_ID, 1, 0, cycle=1)
        done = unit.on_mret(cycle=2)
        # Store occupies 1..31, restore 32..62 on the shared port.
        assert done >= 62


class TestLoadOmission:
    def test_same_task_skips_restore(self):
        unit, _ = make_unit("SDLO")
        unit.boot(4)
        unit.on_interrupt_entry(0, csrmod.CAUSE_MSI)
        unit.exec_custom(CustomOp.SET_CONTEXT_ID, 4, 0, cycle=10)
        assert unit.stats.loads_omitted == 1
        assert unit.stats.words_loaded == 0

    def test_different_task_still_loads(self):
        unit, _ = make_unit("SDLO")
        unit.boot(4)
        unit.on_interrupt_entry(0, csrmod.CAUSE_MSI)
        unit.exec_custom(CustomOp.SET_CONTEXT_ID, 5, 0, cycle=10)
        assert unit.stats.loads_omitted == 0
        assert unit.stats.words_loaded == 31


class TestDirtyBits:
    def test_only_dirty_registers_stored(self):
        unit, core = make_unit("SD")
        unit.boot(0)
        core.app_bank[10] = 0xAA
        core.dirty_mask = 1 << 10  # only a0 dirty
        unit.on_interrupt_entry(0, csrmod.CAUSE_MSI)
        # 1 dirty register + mstatus + mepc.
        assert unit.stats.words_stored == 3
        assert unit.stats.dirty_words_skipped == 28

    def test_dirty_cleared_on_mret(self):
        unit, core = make_unit("SD")
        unit.boot(0)
        core.dirty_mask = 0xFFF0
        unit.on_mret(cycle=100)
        assert core.dirty_mask == 0

    def test_clean_slot_retains_previous_values(self):
        unit, core = make_unit("SD")
        unit.boot(0)
        slot = unit.region.slot_addr(0)
        unit.memory.write_word_raw(slot, 0x111)  # previous ra
        core.dirty_mask = 0
        unit.on_interrupt_entry(0, csrmod.CAUSE_MSI)
        assert unit.memory.read_word_raw(slot) == 0x111


class TestHardwareScheduling:
    def test_get_hw_sched_returns_head(self):
        unit, _ = make_unit("SLT")
        unit.exec_custom(CustomOp.ADD_READY, 0, 2, cycle=0)
        unit.exec_custom(CustomOp.ADD_READY, 1, 5, cycle=0)
        result = unit.exec_custom(CustomOp.GET_HW_SCHED, 0, 0, cycle=100)
        assert result.rd_value == 1
        assert unit.current_task_id == 1

    def test_add_delay_uses_current_task(self):
        unit, _ = make_unit("T")
        unit.exec_custom(CustomOp.ADD_READY, 7, 1, cycle=0)
        unit.exec_custom(CustomOp.GET_HW_SCHED, 0, 0, cycle=20)
        unit.exec_custom(CustomOp.RM_TASK, 7, 0, cycle=30)
        unit.exec_custom(CustomOp.ADD_DELAY, 1, 3, cycle=31)
        assert unit.scheduler.delayed_ids() == [7]

    def test_timer_tick_advances_delays(self):
        unit, _ = make_unit("T")
        unit.exec_custom(CustomOp.ADD_READY, 0, 1, cycle=0)
        unit.exec_custom(CustomOp.GET_HW_SCHED, 0, 0, cycle=10)
        unit.exec_custom(CustomOp.RM_TASK, 0, 0, cycle=20)
        unit.exec_custom(CustomOp.ADD_DELAY, 1, 1, cycle=21)
        unit.on_interrupt_entry(1000, csrmod.CAUSE_MTI)
        assert unit.scheduler.ready_ids() == [0]
        assert unit.stats.ticks == 1

    def test_sched_ops_without_t_raise(self):
        unit, _ = make_unit("S")
        with pytest.raises(SimulationError):
            unit.exec_custom(CustomOp.ADD_READY, 0, 1, cycle=0)
        with pytest.raises(SimulationError):
            unit.exec_custom(CustomOp.GET_HW_SCHED, 0, 0, cycle=0)

    def test_add_delay_without_current_raises(self):
        unit, _ = make_unit("T")
        with pytest.raises(SimulationError):
            unit.exec_custom(CustomOp.ADD_DELAY, 1, 5, cycle=0)


class TestPreloading:
    def _prepare(self):
        unit, core = make_unit("SPLIT")
        for task in (0, 1):
            slot = unit.region.slot_addr(task)
            for index in range(31):
                unit.memory.write_word_raw(slot + 4 * index,
                                           (task << 8) | index)
        unit.exec_custom(CustomOp.ADD_READY, 0, 1, cycle=0)
        unit.exec_custom(CustomOp.ADD_READY, 1, 1, cycle=0)
        unit.exec_custom(CustomOp.GET_HW_SCHED, 0, 0, cycle=10)  # current=0
        return unit, core

    def test_preload_scheduled_after_mret(self):
        unit, _ = self._prepare()
        unit.on_mret(cycle=100)
        assert unit._preload_transfer is not None
        assert unit._preload_predicted == 1

    def test_preload_hit_skips_restore_transfer(self):
        unit, core = self._prepare()
        unit.on_mret(cycle=100)
        unit.on_interrupt_entry(cycle=1000, cause=csrmod.CAUSE_MSI)
        result = unit.exec_custom(CustomOp.GET_HW_SCHED, 0, 0, cycle=1020)
        assert result.rd_value == 1
        assert unit.stats.preload_hits == 1
        # The APP RF still received task 1's context functionally.
        assert core.app_bank[CONTEXT_REG_ORDER[0]] == (1 << 8) | 0

    def test_preload_incomplete_counts_as_miss_path(self):
        unit, _ = self._prepare()
        unit.on_mret(cycle=100)
        # Interrupt arrives immediately: 31 words cannot have transferred.
        unit.on_interrupt_entry(cycle=105, cause=csrmod.CAUSE_MSI)
        unit.exec_custom(CustomOp.GET_HW_SCHED, 0, 0, cycle=110)
        assert unit.stats.preload_hits == 0

    def test_mispredicted_preload_loads_normally(self):
        unit, core = self._prepare()
        unit.on_mret(cycle=100)
        # A higher-priority task 2 appears before the next switch.
        slot = unit.region.slot_addr(2)
        for index in range(31):
            unit.memory.write_word_raw(slot + 4 * index, (2 << 8) | index)
        unit.exec_custom(CustomOp.ADD_READY, 2, 7, cycle=900)
        unit.on_interrupt_entry(cycle=1000, cause=csrmod.CAUSE_MSI)
        result = unit.exec_custom(CustomOp.GET_HW_SCHED, 0, 0, cycle=1020)
        assert result.rd_value == 2
        assert unit.stats.preload_misses == 1
        assert core.app_bank[CONTEXT_REG_ORDER[0]] == (2 << 8) | 0

    def test_no_preload_when_alone(self):
        unit, _ = make_unit("SPLIT")
        unit.exec_custom(CustomOp.ADD_READY, 0, 1, cycle=0)
        unit.exec_custom(CustomOp.GET_HW_SCHED, 0, 0, cycle=10)
        unit.on_mret(cycle=50)
        assert unit._preload_transfer is None


class TestCV32RT:
    def test_snapshot_writes_half_the_registers(self):
        unit, core = make_unit("CV32RT")
        core.app_bank[2] = 0x2000  # sp
        for reg in CV32RT_HW_REGS:
            core.app_bank[reg] = 0x700 + reg
        unit.on_interrupt_entry(0, csrmod.CAUSE_MSI)
        frame = 0x2000 - 31 * 4
        from repro.isa.registers import CONTEXT_SAVED_REGS
        for reg in CV32RT_HW_REGS:
            addr = frame + 4 * CONTEXT_SAVED_REGS.index(reg)
            assert unit.memory.read_word_raw(addr) == 0x700 + reg
        assert unit.stats.words_stored == 16

    def test_snapshot_is_half_the_context(self):
        assert len(CV32RT_HW_REGS) == 16
        assert len(set(CV32RT_HW_REGS)) == 16
