"""Batcher: size caps, linger windows, policy validation."""

import asyncio

import pytest

from repro.service import Batcher, BatchPolicy, JobQueue, JobRequest


class FakeJob:
    def __init__(self, tag):
        self.request = JobRequest(core="cv32e40p", config="SLT",
                                  workload="yield_pingpong")
        self.tag = tag


class TestPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch >= 1
        assert policy.max_linger >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_linger=-1.0)


class TestBatching:
    def test_takes_everything_up_to_max(self):
        async def go():
            queue = JobQueue(capacity=16)
            for index in range(5):
                queue.put(FakeJob(index))
            batcher = Batcher(queue, BatchPolicy(max_batch=3,
                                                 max_linger=0.0))
            return await batcher.next_batch(), queue.depth
        batch, left = asyncio.run(go())
        assert [job.tag for job in batch] == [0, 1, 2]
        assert left == 2

    def test_partial_batch_after_linger(self):
        async def go():
            queue = JobQueue(capacity=16)
            queue.put(FakeJob("only"))
            batcher = Batcher(queue, BatchPolicy(max_batch=8,
                                                 max_linger=0.01))
            return await batcher.next_batch()
        batch = asyncio.run(go())
        assert [job.tag for job in batch] == ["only"]

    def test_linger_picks_up_stragglers(self):
        async def go():
            queue = JobQueue(capacity=16)
            queue.put(FakeJob("first"))
            batcher = Batcher(queue, BatchPolicy(max_batch=8,
                                                 max_linger=0.2))

            async def straggler():
                await asyncio.sleep(0.02)
                queue.put(FakeJob("late"))
            task = asyncio.ensure_future(straggler())
            batch = await batcher.next_batch()
            await task
            return batch
        batch = asyncio.run(go())
        assert [job.tag for job in batch] == ["first", "late"]

    def test_blocks_until_first_job(self):
        async def go():
            queue = JobQueue(capacity=16)
            batcher = Batcher(queue, BatchPolicy(max_batch=2,
                                                 max_linger=0.0))

            async def feeder():
                await asyncio.sleep(0.02)
                queue.put(FakeJob("fed"))
            task = asyncio.ensure_future(feeder())
            batch = await batcher.next_batch()
            await task
            return batch
        batch = asyncio.run(go())
        assert [job.tag for job in batch] == ["fed"]
