"""Circuit breaker: unit state machine + service-level fail-fast."""

import asyncio

import pytest

from repro.errors import CircuitOpenError, ExplorationError, QueueFullError
from repro.service import CircuitBreaker, JobRequest, SimulationService


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBreakerStateMachine:
    def test_closed_by_default(self):
        breaker = CircuitBreaker(clock=FakeClock())
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_trips_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.1)
        assert breaker.state == "half-open"
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everything else waits on it

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_full_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert breaker.retry_after() == pytest.approx(5.0)

    def test_retry_after_counts_down(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(4.0)
        assert breaker.retry_after() == pytest.approx(6.0)

    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0}, {"cooldown": 0.0}, {"cooldown": -1.0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(clock=FakeClock(), **kwargs)


def _request(seed=0, priority="batch"):
    return JobRequest(core="cv32e40p", config="SLT",
                      workload="yield_pingpong", iterations=1, seed=seed,
                      priority=priority)


class TestServiceFailFast:
    def test_open_circuit_rejects_new_work_structured(self, monkeypatch):
        def doomed_batch(points, jobs=1, retries=1, timeout=None,
                         health=None):
            raise ExplorationError("worker tier is down")
        monkeypatch.setattr("repro.service.server.run_batch", doomed_batch)

        async def go():
            service = SimulationService(
                breaker=CircuitBreaker(threshold=1, cooldown=30.0))
            async with service:
                first = await service.submit_and_wait(_request(seed=1))
                assert first.status == "error"
                assert first.error["type"] == "ExplorationError"
                with pytest.raises(CircuitOpenError) as exc_info:
                    await service.submit(_request(seed=2))
                assert exc_info.value.retry_after > 0
                assert isinstance(exc_info.value, QueueFullError)
                assert service.stats.circuit_open == 1
                assert service.breaker.state == "open"
        asyncio.run(go())

    def test_probe_recovers_service(self, monkeypatch):
        calls = {"n": 0}

        def flaky_batch(points, jobs=1, retries=1, timeout=None,
                        health=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ExplorationError("transient infra death")
            return [{"status": "done", "run": {"fake": True}}
                    for _ in points]
        monkeypatch.setattr("repro.service.server.run_batch", flaky_batch)

        clock_state = {"now": 0.0}

        def clock():
            return clock_state["now"]

        async def go():
            service = SimulationService(
                clock=clock,
                breaker=CircuitBreaker(threshold=1, cooldown=0.05,
                                       clock=clock))
            async with service:
                first = await service.submit_and_wait(_request(seed=1))
                assert first.status == "error"
                clock_state["now"] += 0.06  # past cooldown: probe admitted
                second = await service.submit_and_wait(_request(seed=2))
                assert second.status == "done"
                assert service.breaker.state == "closed"
        asyncio.run(go())
