"""CLI verbs: repro submit / serve / drain, and cross-path identity."""

import json

import pytest

from repro.cli import build_parser, main


def _write_requests(path, rows):
    path.write_text("".join(json.dumps(row) + "\n" for row in rows))
    return path


ROW = {"core": "cv32e40p", "config": "SLT", "workload": "yield_pingpong",
       "iterations": 2, "seed": 42}


class TestParser:
    def test_service_subcommands_registered(self):
        text = build_parser().format_help()
        for command in ("serve", "submit", "drain"):
            assert command in text

    def test_serve_requires_spool(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])


class TestSubmit:
    def test_submit_streams_and_writes_results(self, tmp_path, capsys):
        requests = _write_requests(tmp_path / "reqs.jsonl",
                                   [ROW, ROW, dict(ROW, seed=7)])
        out = tmp_path / "results.jsonl"
        stats_json = tmp_path / "stats.json"
        code = main(["submit", str(requests), "--out", str(out),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--stats", "--stats-json", str(stats_json)])
        assert code == 0
        printed = capsys.readouterr().out
        # one streamed progress line per job
        assert printed.count("cv32e40p/SLT/yield_pingpong") >= 3
        assert "3/3 jobs completed" in printed
        assert "coalesce+cache hit rate" in printed

        records = [json.loads(line) for line in
                   out.read_text().splitlines()]
        assert len(records) == 3
        assert all(record["status"] == "done" for record in records)
        # duplicate requests share one execution
        assert records[0]["run"] == records[1]["run"]
        served = {record["served_by"] for record in records[:2]}
        assert "coalesced" in served or "cache" in served

        stats = json.loads(stats_json.read_text())
        assert stats["completed"] == 3
        assert stats["executed"] <= 2

    def test_submit_exit_code_on_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json}\n")
        code = main(["submit", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_warm_cache_second_submit(self, tmp_path, capsys):
        requests = _write_requests(tmp_path / "reqs.jsonl", [ROW])
        cache = str(tmp_path / "cache")
        assert main(["submit", str(requests), "--cache-dir", cache,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["submit", str(requests), "--cache-dir", cache]) == 0
        assert "(cache)" in capsys.readouterr().out


class TestIdentityAcrossFrontDoors:
    def test_submit_dse_and_sweep_agree(self, tmp_path, capsys):
        """Acceptance: same (core, config, workload, seed) → byte-identical
        run payloads via repro submit, repro dse, and direct sweep()."""
        from repro.dse import DSEExecutor, build_grid
        from repro.harness import run_dict, sweep

        requests = _write_requests(tmp_path / "reqs.jsonl", [ROW])
        out = tmp_path / "results.jsonl"
        assert main(["submit", str(requests), "--out", str(out),
                     "--quiet"]) == 0
        capsys.readouterr()
        service_payload = json.loads(out.read_text())["run"]

        points = build_grid(cores=["cv32e40p"], configs=["SLT"],
                            workloads=["yield_pingpong"], iterations=2,
                            seed=42)
        dse_payload = run_dict(DSEExecutor().run(points)[points[0]])

        from repro.workloads import yield_pingpong
        suites = sweep(cores=["cv32e40p"], configs=["SLT"], iterations=2,
                       workloads=[yield_pingpong], seed=42)
        sweep_payload = run_dict(suites[("cv32e40p", "SLT")].runs[0])

        blobs = {json.dumps(payload, sort_keys=True)
                 for payload in (service_payload, dse_payload,
                                 sweep_payload)}
        assert len(blobs) == 1
