"""Request parsing, the in-process client, and the spool protocol."""

import asyncio
import json
import threading

import pytest

from repro.errors import QueueFullError, ServiceError
from repro.service import (
    InProcessClient,
    JobRequest,
    SimulationService,
    SpoolClient,
    load_requests,
    request_drain,
    serve_spool,
)


class TestRequestParsing:
    def test_round_trip(self):
        request = JobRequest(core="cva6", config="SLT",
                             workload="sem_signal", iterations=5, seed=3,
                             priority="interactive")
        assert JobRequest.from_dict(request.as_dict()) == request

    def test_defaults(self):
        request = JobRequest.from_dict({"core": "cv32e40p",
                                        "config": "SLT",
                                        "workload": "yield_pingpong"})
        assert request.iterations == 10
        assert request.seed == 0
        assert request.priority == "batch"

    @pytest.mark.parametrize("patch, fragment", [
        ({"core": "z80"}, "unknown core"),
        ({"config": "XYZZY"}, "bad config"),
        ({"workload": "nope"}, "unknown workload"),
        ({"iterations": 0}, "iterations"),
        ({"priority": "whenever"}, "unknown priority"),
        ({"bogus": 1}, "unknown job request fields"),
    ])
    def test_validation_messages(self, patch, fragment):
        payload = {"core": "cv32e40p", "config": "SLT",
                   "workload": "yield_pingpong"}
        payload.update(patch)
        with pytest.raises(ServiceError, match=fragment):
            JobRequest.from_dict(payload)

    def test_missing_field(self):
        with pytest.raises(ServiceError, match="missing required field"):
            JobRequest.from_dict({"core": "cv32e40p", "config": "SLT"})


class TestLoadRequests:
    def test_jsonl_with_comments_and_blanks(self, tmp_path):
        path = tmp_path / "reqs.jsonl"
        path.write_text(
            "# interactive first\n"
            '{"core":"cv32e40p","config":"SLT","workload":"yield_pingpong",'
            '"priority":"interactive"}\n'
            "\n"
            '{"core":"cv32e40p","config":"vanilla","workload":"sem_signal"}\n')
        requests = load_requests(path)
        assert len(requests) == 2
        assert requests[0].priority == "interactive"
        assert requests[1].workload == "sem_signal"

    def test_error_names_line(self, tmp_path):
        path = tmp_path / "reqs.jsonl"
        path.write_text(
            '{"core":"cv32e40p","config":"SLT","workload":"yield_pingpong"}\n'
            "{not json}\n")
        with pytest.raises(ServiceError, match=r"reqs\.jsonl:2"):
            load_requests(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("# nothing here\n")
        with pytest.raises(ServiceError, match="no jobs"):
            load_requests(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ServiceError, match="cannot read"):
            load_requests(tmp_path / "absent.jsonl")


class TestInProcessClient:
    def test_retries_after_rejection(self):
        request = JobRequest(core="cv32e40p", config="SLT",
                             workload="yield_pingpong", iterations=1)
        events = []

        class FlakyService:
            def __init__(self):
                self.calls = 0

            async def submit(self, request):
                self.calls += 1
                if self.calls == 1:
                    raise QueueFullError("full", retry_after=0.01,
                                         depth=1, capacity=1)
                future = asyncio.get_running_loop().create_future()
                future.set_result("resolved-result")
                return future

        client = InProcessClient(
            FlakyService(), max_retries=2,
            progress=lambda event, *rest: events.append(event))
        results = asyncio.run(client.submit_many([request]))
        assert results == ["resolved-result"]
        assert events == ["rejected", "resolved"]

    def test_gives_up_after_budget(self):
        request = JobRequest(core="cv32e40p", config="SLT",
                             workload="yield_pingpong", iterations=1)

        class AlwaysFull:
            async def submit(self, request):
                raise QueueFullError("full", retry_after=0.001,
                                     depth=1, capacity=1)

        client = InProcessClient(AlwaysFull(), max_retries=2)
        with pytest.raises(ServiceError, match="rejected 3 times"):
            asyncio.run(client.submit_many([request]))


class TestSpoolProtocol:
    def test_round_trip_with_drain(self, tmp_path):
        spool = tmp_path / "spool"
        stats_box = {}

        def server():
            async def go():
                service = SimulationService()
                async with service:
                    stats_box.update(await serve_spool(
                        service, spool, poll=0.01))
            asyncio.run(go())

        thread = threading.Thread(target=server, daemon=True)
        thread.start()

        requests = [
            JobRequest(core="cv32e40p", config="SLT",
                       workload="yield_pingpong", iterations=1, seed=seed)
            for seed in (0, 0, 1)  # one duplicate to coalesce or re-serve
        ]
        client = SpoolClient(spool, poll=0.01, timeout=120.0)
        records = client.submit_many(requests)
        stats = request_drain(spool, timeout=60.0)
        thread.join(timeout=60.0)
        assert not thread.is_alive()

        assert [record["status"] for record in records] == ["done"] * 3
        # Identical requests → byte-identical payloads over the spool.
        assert (json.dumps(records[0]["run"], sort_keys=True)
                == json.dumps(records[1]["run"], sort_keys=True))
        assert stats["completed"] == 3
        assert stats["failed"] == 0
        assert stats_box == stats

    def test_malformed_request_gets_error_record(self, tmp_path):
        spool = tmp_path / "spool"
        inbox = spool / "inbox"
        inbox.mkdir(parents=True)
        (inbox / "bad.json").write_text(
            '{"id": "bad", "core": "z80", "config": "SLT", '
            '"workload": "yield_pingpong"}\n')

        def server():
            async def go():
                service = SimulationService()
                async with service:
                    await serve_spool(service, spool, poll=0.01,
                                      idle_exit=0.2)
            asyncio.run(go())

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        record = json.loads((spool / "results" / "bad.json").read_text())
        assert record["status"] == "error"
        assert "unknown core" in record["error"]["message"]

    def test_drain_times_out_without_server(self, tmp_path):
        with pytest.raises(ServiceError, match="did not drain"):
            request_drain(tmp_path / "nobody-home", timeout=0.2, poll=0.05)
