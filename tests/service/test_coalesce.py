"""Coalescing and dedup: the service's core efficiency guarantee.

Includes the subsystem acceptance test: 50 concurrent submissions over
20 unique grid points must complete with at least 60% of jobs served by
coalescing or the cache — i.e. at most one real execution per unique
point.
"""

import asyncio

from repro.dse import GridPoint, ResultCache
from repro.service import Coalescer, JobRequest, SimulationService


def _point(seed=0, config="SLT"):
    return GridPoint(core="cv32e40p", config=config,
                     workload="yield_pingpong", iterations=1, seed=seed)


class TestKeyScheme:
    def test_key_matches_result_cache(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f00d")
        coalescer = Coalescer(cache)
        point = _point(seed=7)
        assert coalescer.key(point) == cache.key(point)

    def test_key_sensitivity(self):
        coalescer = Coalescer(fingerprint="f00d")
        base = coalescer.key(_point(seed=0))
        assert coalescer.key(_point(seed=0)) == base
        assert coalescer.key(_point(seed=1)) != base
        assert coalescer.key(_point(config="S")) != base

    def test_fingerprint_inherited_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="abcd")
        assert Coalescer(cache).fingerprint == "abcd"


class TestLookup:
    def test_new_then_inflight_then_released(self):
        coalescer = Coalescer(fingerprint="f00d")
        point = _point()
        kind, key = coalescer.lookup(point)
        assert kind == "new"
        leader = object()
        coalescer.lease(key, leader)
        kind, value = coalescer.lookup(point)
        assert kind == "inflight" and value is leader
        coalescer.release(key)
        assert coalescer.lookup(point)[0] == "new"
        assert coalescer.inflight_count == 0

    def test_cache_hit_preferred_over_enqueue(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f00d")
        point = _point()
        cache.put(point, {"fake": "payload"})
        kind, payload = Coalescer(cache).lookup(point)
        assert kind == "cache"
        assert payload == {"fake": "payload"}


class TestAcceptance:
    """50 submissions, 20 unique points, >= 60% coalesce+cache."""

    def test_50_jobs_over_20_points(self, tmp_path):
        unique = [JobRequest(core="cv32e40p", config=config,
                             workload="yield_pingpong", iterations=1,
                             seed=seed)
                  for config in ("vanilla", "SLT")
                  for seed in range(10)]
        assert len(unique) == 20
        # 50 requests: every unique point once, then 30 duplicates
        # interleaved deterministically.
        requests = list(unique)
        while len(requests) < 50:
            requests.append(unique[(len(requests) * 7) % len(unique)])

        cache = ResultCache(tmp_path / "cache")
        service = SimulationService(cache=cache, queue_depth=64)

        async def submit_all():
            async with service:
                futures = [await service.submit(request)
                           for request in requests]
                return await asyncio.gather(*futures)

        results = asyncio.run(submit_all())

        assert len(results) == 50
        assert all(result.ok for result in results)
        stats = service.stats
        assert stats.failed == 0
        assert stats.executed <= 20  # one real simulation per unique point
        assert stats.cache_hits + stats.coalesced >= 30
        assert stats.hit_rate >= 0.6
        # Identical requests produced identical payloads.
        by_request: dict = {}
        for request, result in zip(requests, results):
            by_request.setdefault(request, []).append(result.run)
        for payloads in by_request.values():
            assert all(payload == payloads[0] for payload in payloads)
