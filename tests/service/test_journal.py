"""Spool journal durability and the crash-restart exactly-once proof."""

import asyncio
import json
import threading

from repro.service import SimulationService, SpoolJournal, serve_spool
from repro.service.client import request_drain

REQUEST = {"core": "cv32e40p", "config": "SLT",
           "workload": "yield_pingpong", "iterations": 1, "seed": 0}


class TestJournalUnit:
    def test_accepted_resolved_pending(self, tmp_path):
        journal = SpoolJournal(tmp_path)
        journal.accepted("a", {"seed": 1})
        journal.accepted("b", {"seed": 2})
        assert len(journal) == 2
        journal.resolved("a")
        assert journal.pending() == {"b": {"seed": 2}}
        assert len(journal) == 1

    def test_accepted_is_idempotent(self, tmp_path):
        journal = SpoolJournal(tmp_path)
        journal.accepted("a", {"seed": 1})
        journal.accepted("a", {"seed": 99})  # ignored: already journalled
        journal.resolved("b")
        journal.resolved("b")
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert journal.pending() == {"a": {"seed": 1}}

    def test_reload_from_disk(self, tmp_path):
        first = SpoolJournal(tmp_path)
        first.accepted("a", REQUEST)
        first.accepted("b", REQUEST)
        first.resolved("a")
        second = SpoolJournal(tmp_path)
        assert second.pending() == {"b": REQUEST}

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        journal = SpoolJournal(tmp_path)
        journal.accepted("a", {"seed": 1})
        with (tmp_path / "journal.jsonl").open("a") as handle:
            handle.write('{"event": "reso')  # crash hit mid-append
        reloaded = SpoolJournal(tmp_path)
        assert reloaded.pending() == {"a": {"seed": 1}}

    def test_clear_removes_the_file(self, tmp_path):
        journal = SpoolJournal(tmp_path)
        journal.accepted("a", {})
        journal.clear()
        assert len(journal) == 0
        assert not (tmp_path / "journal.jsonl").exists()
        assert SpoolJournal(tmp_path).pending() == {}


def _run_server(spool, **kwargs):
    """Run one serve_spool incarnation to completion in a thread."""
    stats_box = {}
    errors = []

    def server():
        async def go():
            service = SimulationService()
            async with service:
                stats_box.update(await serve_spool(
                    service, spool, poll=0.01, **kwargs))
        try:
            asyncio.run(go())
        except BaseException as exc:  # surfaced to the test thread
            errors.append(exc)

    thread = threading.Thread(target=server, daemon=True)
    thread.start()
    return thread, stats_box, errors


class TestCrashRestartExactlyOnce:
    def test_restarted_server_replays_pending_jobs(self, tmp_path):
        """A job accepted but unresolved by a dead server still completes.

        Simulates the exact crash window the journal exists for: the
        previous incarnation journalled acceptance and unlinked the
        inbox file, then died before the result landed. The restarted
        server must complete the job from the journalled payload alone
        — there is no inbox file left to rediscover it from.
        """
        spool = tmp_path / "spool"
        crashed = SpoolJournal(spool)
        crashed.accepted("job-lost", dict(REQUEST))

        thread, stats, errors = _run_server(spool, idle_exit=0.3)
        thread.join(timeout=120.0)
        assert not thread.is_alive() and not errors

        record = json.loads(
            (spool / "results" / "job-lost.json").read_text())
        assert record["status"] == "done"
        assert stats["journal_replays"] == 1
        assert stats["completed"] == 1

    def test_delivered_before_crash_is_not_rerun(self, tmp_path):
        """Crash between result write and journal line: no second run."""
        spool = tmp_path / "spool"
        crashed = SpoolJournal(spool)
        crashed.accepted("job-done", dict(REQUEST))
        results = spool / "results"
        results.mkdir(parents=True)
        sentinel = {"status": "done", "sentinel": "from-first-incarnation"}
        (results / "job-done.json").write_text(json.dumps(sentinel))

        thread, stats, errors = _run_server(spool, idle_exit=0.3)
        thread.join(timeout=120.0)
        assert not thread.is_alive() and not errors

        # Exactly once: the existing result is honoured, not recomputed.
        assert json.loads((results / "job-done.json").read_text()) == sentinel
        assert stats["journal_replays"] == 0
        assert stats["executed"] == 0
        # The restart repaired the missing bookkeeping line.
        assert SpoolJournal(spool).pending() == {}

    def test_clean_drain_clears_the_journal(self, tmp_path):
        spool = tmp_path / "spool"
        inbox = spool / "inbox"
        inbox.mkdir(parents=True)
        (inbox / "tidy.json").write_text(
            json.dumps(dict(REQUEST, id="tidy")))

        thread, stats, errors = _run_server(spool)
        drained = request_drain(spool, timeout=120.0)
        thread.join(timeout=120.0)
        assert not thread.is_alive() and not errors
        assert drained["completed"] == 1
        assert not (spool / "journal.jsonl").exists()
