"""Bounded priority queue: ordering, depth, structured backpressure."""

import pytest

from repro.errors import QueueFullError, ServiceError
from repro.service import JobQueue, JobRequest


class FakeJob:
    def __init__(self, priority="batch", tag=""):
        self.request = JobRequest(core="cv32e40p", config="SLT",
                                  workload="yield_pingpong",
                                  priority=priority)
        self.tag = tag


class TestOrdering:
    def test_priority_classes_drain_in_order(self):
        queue = JobQueue(capacity=8)
        queue.put(FakeJob("bulk", "k1"))
        queue.put(FakeJob("batch", "b1"))
        queue.put(FakeJob("interactive", "i1"))
        queue.put(FakeJob("bulk", "k2"))
        order = [queue.pop_nowait().tag for _ in range(4)]
        assert order == ["i1", "b1", "k1", "k2"]

    def test_fifo_within_class(self):
        queue = JobQueue(capacity=8)
        for tag in ("a", "b", "c"):
            queue.put(FakeJob("batch", tag))
        assert [queue.pop_nowait().tag for _ in range(3)] == ["a", "b", "c"]

    def test_pop_empty_returns_none(self):
        assert JobQueue(capacity=2).pop_nowait() is None


class TestBackpressure:
    def test_put_rejects_when_full(self):
        queue = JobQueue(capacity=2, retry_after=lambda: 2.5)
        queue.put(FakeJob())
        queue.put(FakeJob())
        with pytest.raises(QueueFullError) as info:
            queue.put(FakeJob())
        exc = info.value
        assert exc.retry_after == 2.5
        assert exc.depth == 2 and exc.capacity == 2
        assert "retry after 2.50s" in str(exc)
        # A rejection is a library error, catchable without asyncio.
        assert isinstance(exc, ServiceError)
        # The queue itself is untouched by the rejection.
        assert queue.depth == 2

    def test_rejection_never_blocks(self):
        # put() on a full queue must raise immediately, not wait: the
        # whole point of explicit backpressure.
        queue = JobQueue(capacity=1)
        queue.put(FakeJob())
        for _ in range(100):
            with pytest.raises(QueueFullError):
                queue.put(FakeJob())
        assert queue.depth == 1

    def test_capacity_frees_after_pop(self):
        queue = JobQueue(capacity=1)
        queue.put(FakeJob(tag="first"))
        assert queue.pop_nowait().tag == "first"
        queue.put(FakeJob(tag="second"))  # no raise
        assert queue.depth == 1

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            JobQueue(capacity=0)
