"""Server lifecycle, error propagation and backpressure end to end."""

import asyncio
import time

import pytest

from repro.errors import (
    AnalysisError,
    QueueFullError,
    ServiceError,
    SimulationError,
)
from repro.harness.export import SWEEP_SCHEMA, load_run
from repro.service import BatchPolicy, JobRequest, SimulationService
from repro.service import worker as worker_module


REQ = JobRequest(core="cv32e40p", config="SLT", workload="yield_pingpong",
                 iterations=1, seed=0)


def run(coro):
    return asyncio.run(coro)


class TestHappyPath:
    def test_submit_and_wait(self):
        async def go():
            async with SimulationService() as service:
                return await service.submit_and_wait(REQ)
        result = run(go())
        assert result.ok and result.status == "done"
        assert result.served_by == "executed"
        assert result.latency_s > 0
        # The payload round-trips through the sweep schema loader.
        loaded = load_run(result.run)
        assert loaded.workload == "yield_pingpong"
        assert result.record()["schema"] == SWEEP_SCHEMA

    def test_drain_waits_for_everything(self):
        async def go():
            async with SimulationService() as service:
                futures = [await service.submit(REQ) for _ in range(3)]
                await service.drain()
                assert all(future.done() for future in futures)
                return [future.result() for future in futures]
        results = run(go())
        assert [r.ok for r in results] == [True, True, True]

    def test_stopped_service_refuses_submissions(self):
        async def go():
            service = SimulationService()
            async with service:
                await service.submit_and_wait(REQ)
            with pytest.raises(ServiceError):
                await service.submit(REQ)
        run(go())


class TestErrorPropagation:
    def test_simulation_error_context_reaches_client(self, monkeypatch):
        def explode(point):
            raise SimulationError("task stack corrupted", pc=0x1234,
                                  cycle=999, kind="livelock")
        monkeypatch.setattr(worker_module, "execute_point", explode)

        async def go():
            async with SimulationService() as service:
                return await service.submit_and_wait(REQ)
        result = run(go())
        assert not result.ok and result.status == "error"
        error = result.error
        assert error["type"] == "SimulationError"
        assert "task stack corrupted" in error["message"]
        assert error["pc"] == 0x1234
        assert error["cycle"] == 999
        assert error["kind"] == "livelock"

    def test_empty_result_job_is_clean_error(self, monkeypatch):
        # A run with zero collected samples must surface as a
        # structured "no samples" error record, never a traceback.
        from repro.harness.metrics import LatencyStats

        def empty(point):
            LatencyStats.from_samples([])
        monkeypatch.setattr(worker_module, "execute_point", empty)

        async def go():
            async with SimulationService() as service:
                return await service.submit_and_wait(REQ)
        result = run(go())
        assert result.status == "error"
        assert result.error["type"] == "AnalysisError"
        assert "no samples" in result.error["message"]
        # and the underlying exception is also a plain ValueError
        assert issubclass(AnalysisError, ValueError)

    def test_errors_do_not_poison_the_cache(self, monkeypatch, tmp_path):
        from repro.dse import ResultCache

        calls = {"n": 0}

        def flaky_then_ok(point):
            calls["n"] += 1
            if calls["n"] == 1:
                raise SimulationError("transient-looking failure")
            return real_execute(point)

        real_execute = worker_module.execute_point
        monkeypatch.setattr(worker_module, "execute_point", flaky_then_ok)
        cache = ResultCache(tmp_path, fingerprint="f00d")

        async def go(service):
            async with service:
                return await service.submit_and_wait(REQ)

        first = run(go(SimulationService(cache=cache)))
        assert first.status == "error"
        assert len(cache) == 0  # error outcomes are never cached
        second = run(go(SimulationService(cache=cache)))
        assert second.status == "done"
        assert second.served_by == "executed"  # not a (stale) cache hit


class TestBackpressure:
    def test_queue_full_is_structured_not_blocking(self, monkeypatch):
        def slow_batch(points, jobs=1, retries=1, timeout=None, health=None):
            time.sleep(0.3)
            return [{"status": "done", "run": {"fake": True}}
                    for _ in points]
        monkeypatch.setattr("repro.service.server.run_batch", slow_batch)

        async def go():
            service = SimulationService(
                queue_depth=1,
                policy=BatchPolicy(max_batch=1, max_linger=0.0))
            async with service:
                started = time.monotonic()
                first = await service.submit(REQ)   # dispatches
                futures = [first]
                rejections = 0
                # Fill the single queue slot, then overflow it.
                for seed in range(1, 6):
                    request = JobRequest(core="cv32e40p", config="SLT",
                                         workload="yield_pingpong",
                                         iterations=1, seed=seed)
                    try:
                        futures.append(await service.submit(request))
                    except QueueFullError as exc:
                        rejections += 1
                        assert exc.retry_after > 0
                elapsed = time.monotonic() - started
                # Rejections came back immediately, not after the
                # 0.3s-per-batch backlog drained.
                assert elapsed < 0.25
                assert rejections >= 1
                await service.drain()
                return rejections, service.stats
        rejections, stats = run(go())
        assert stats.rejected == rejections
        assert stats.queue_depth == 0


class TestBatching:
    def test_batches_amortize_dispatch(self, monkeypatch):
        seen_batches = []

        def recording_batch(points, jobs=1, retries=1, timeout=None,
                            health=None):
            seen_batches.append(len(points))
            return [{"status": "done", "run": {"fake": True}}
                    for _ in points]
        monkeypatch.setattr("repro.service.server.run_batch",
                            recording_batch)

        async def go():
            service = SimulationService(
                policy=BatchPolicy(max_batch=4, max_linger=0.05))
            async with service:
                futures = [await service.submit(
                    JobRequest(core="cv32e40p", config="SLT",
                               workload="yield_pingpong", iterations=1,
                               seed=seed)) for seed in range(8)]
                await asyncio.gather(*futures)
                return service.stats
        stats = run(go())
        assert sum(seen_batches) == 8
        assert all(size <= 4 for size in seen_batches)
        assert max(seen_batches) > 1  # linger actually grouped requests
        assert stats.batches == len(seen_batches)
        assert stats.mean_batch_fill == pytest.approx(
            8 / len(seen_batches))
