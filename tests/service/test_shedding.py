"""Tiered load shedding: bulk loses admission first, interactive last."""

import asyncio

import pytest

from repro.errors import QueueFullError
from repro.service import JobQueue, JobRequest, ShedPolicy, SimulationService


class _FakeJob:
    def __init__(self, priority):
        self.request = JobRequest(core="cv32e40p", config="SLT",
                                  workload="yield_pingpong", iterations=1,
                                  priority=priority)


class TestShedPolicy:
    def test_default_limits(self):
        shed = ShedPolicy()
        assert shed.limit("bulk", 100) == 50
        assert shed.limit("batch", 100) == 85
        assert shed.limit("interactive", 100) == 100

    def test_limits_never_below_one(self):
        shed = ShedPolicy(bulk_fraction=0.1)
        assert shed.limit("bulk", 2) == 1

    @pytest.mark.parametrize("kwargs", [
        {"bulk_fraction": 0.0}, {"bulk_fraction": 1.5},
        {"bulk_fraction": 0.9, "batch_fraction": 0.5},
        {"batch_fraction": 1.1},
    ])
    def test_invalid_fractions(self, kwargs):
        with pytest.raises(ValueError):
            ShedPolicy(**kwargs)


class TestTieredQueue:
    def _queue(self, capacity=10):
        return JobQueue(capacity=capacity, retry_after=lambda: 0.5,
                        shed=ShedPolicy())

    def test_bulk_shed_first(self):
        queue = self._queue()
        for _ in range(5):
            queue.put(_FakeJob("bulk"))
        with pytest.raises(QueueFullError) as exc_info:
            queue.put(_FakeJob("bulk"))
        assert exc_info.value.tier == "bulk"
        assert "bulk tier" in str(exc_info.value)
        # batch and interactive still admitted at the same depth
        queue.put(_FakeJob("batch"))
        queue.put(_FakeJob("interactive"))

    def test_batch_shed_second_interactive_protected(self):
        queue = self._queue()
        for _ in range(8):
            queue.put(_FakeJob("batch"))
        with pytest.raises(QueueFullError) as exc_info:
            queue.put(_FakeJob("batch"))
        assert exc_info.value.tier == "batch"
        for _ in range(2):
            queue.put(_FakeJob("interactive"))
        with pytest.raises(QueueFullError) as exc_info:
            queue.put(_FakeJob("interactive"))
        # True capacity: a full-queue rejection, not a shed one.
        assert "interactive" == exc_info.value.tier
        assert exc_info.value.capacity == 10

    def test_no_shed_policy_is_uniform(self):
        queue = JobQueue(capacity=4, retry_after=lambda: 0.5)
        for _ in range(4):
            queue.put(_FakeJob("bulk"))
        with pytest.raises(QueueFullError) as exc_info:
            queue.put(_FakeJob("bulk"))
        assert exc_info.value.tier is None


class TestServiceShedding:
    def test_shed_rejections_counted_separately(self, monkeypatch):
        def never_batch(points, jobs=1, retries=1, timeout=None,
                        health=None):  # pragma: no cover - queue stays full
            raise AssertionError("scheduler must not drain in this test")

        async def go():
            service = SimulationService(queue_depth=4,
                                        shed=ShedPolicy(bulk_fraction=0.5))
            # Stall the scheduler so the queue holds depth: no batches.
            service.batcher.next_batch = _never_ready
            service.start()
            for seed in range(2):
                await service.submit(_request("bulk", seed))
            with pytest.raises(QueueFullError) as exc_info:
                await service.submit(_request("bulk", 99))
            assert exc_info.value.tier == "bulk"
            assert service.stats.shed == 1
            assert service.stats.rejected == 1
            # Interactive work is still admitted past the bulk limit.
            await service.submit(_request("interactive", 100))
            service._scheduler_task.cancel()

        async def _never_ready():
            await asyncio.sleep(3600)

        def _request(priority, seed):
            return JobRequest(core="cv32e40p", config="SLT",
                              workload="yield_pingpong", iterations=1,
                              seed=seed, priority=priority)

        asyncio.run(go())
