"""Spool protocol under host faults: torn files, dropped results, STOP.

Satellite of the chaos-hardening PR: every crash case answers with a
structured error record or a client-side repost — the protocol never
hangs and never silently loses a job.
"""

import asyncio
import json
import threading

import pytest

from repro.chaos import ChaosPolicy, ChaosSpec, installed, uninstall
from repro.errors import ServiceError
from repro.service import (
    JobRequest,
    SimulationService,
    SpoolClient,
    serve_spool,
)
from repro.service.client import request_drain

REQUEST = JobRequest(core="cv32e40p", config="SLT",
                     workload="yield_pingpong", iterations=1, seed=0)


@pytest.fixture(autouse=True)
def _clean_chaos():
    uninstall()
    yield
    uninstall()


def _run_server(spool, **kwargs):
    stats_box = {}
    errors = []

    def server():
        async def go():
            service = SimulationService()
            async with service:
                stats_box.update(await serve_spool(
                    service, spool, poll=0.01, **kwargs))
        try:
            asyncio.run(go())
        except BaseException as exc:
            errors.append(exc)

    thread = threading.Thread(target=server, daemon=True)
    thread.start()
    return thread, stats_box, errors


def _join(thread, errors):
    thread.join(timeout=120.0)
    assert not thread.is_alive(), "spool server hung"
    assert not errors, errors


class TestTornRequestFiles:
    def test_truncated_request_answers_structured_error(self, tmp_path):
        """A request file cut mid-JSON still gets an answer for its id."""
        spool = tmp_path / "spool"
        inbox = spool / "inbox"
        inbox.mkdir(parents=True)
        text = json.dumps(dict(REQUEST.as_dict(), id="torn"))
        (inbox / "torn.json").write_text(text[:len(text) // 2])

        thread, _, errors = _run_server(spool, idle_exit=0.3)
        _join(thread, errors)
        record = json.loads((spool / "results" / "torn.json").read_text())
        assert record["status"] == "error"
        assert record["error"]["type"] == "ServiceError"
        assert "malformed request file" in record["error"]["message"]
        assert not (inbox / "torn.json").exists()

    def test_non_object_request_answers_structured_error(self, tmp_path):
        spool = tmp_path / "spool"
        inbox = spool / "inbox"
        inbox.mkdir(parents=True)
        (inbox / "listy.json").write_text("[1, 2, 3]\n")

        thread, _, errors = _run_server(spool, idle_exit=0.3)
        _join(thread, errors)
        record = json.loads((spool / "results" / "listy.json").read_text())
        assert record["status"] == "error"
        assert "not an object" in record["error"]["message"]


class TestStopSemantics:
    def test_stop_present_at_startup_still_serves_queued_work(self, tmp_path):
        """STOP never abandons inbox files that beat it to the spool."""
        spool = tmp_path / "spool"
        inbox = spool / "inbox"
        inbox.mkdir(parents=True)
        for seed in (0, 1):
            payload = dict(REQUEST.as_dict(), id=f"job-{seed}", seed=seed)
            (inbox / f"job-{seed}.json").write_text(json.dumps(payload))
        (spool / "STOP").touch()

        thread, stats, errors = _run_server(spool)
        _join(thread, errors)
        for seed in (0, 1):
            record = json.loads(
                (spool / "results" / f"job-{seed}.json").read_text())
            assert record["status"] == "done"
        assert stats["completed"] == 2
        assert not (spool / "journal.jsonl").exists()

    def test_drain_timeout_raises_structured_error(self, tmp_path):
        with pytest.raises(ServiceError, match="did not drain"):
            request_drain(tmp_path / "ghost", timeout=0.2, poll=0.05)


class TestResultPathChaos:
    def test_dropped_result_recovered_by_silent_repost(self, tmp_path):
        """`spool.result` drop: the write never happens; client reposts."""
        spool = tmp_path / "spool"
        policy = ChaosPolicy(specs=(
            ChaosSpec("drop_result", "spool.result", at=1),))
        with installed(policy):
            thread, stats, errors = _run_server(spool)
            client = SpoolClient(spool, poll=0.02, timeout=120.0,
                                 repost_after=0.5)
            records = client.submit_many([REQUEST])
            request_drain(spool, timeout=120.0)
            _join(thread, errors)
        assert records[0]["status"] == "done"
        assert client.reposts == 1
        assert client.corrupt_results == 0
        assert stats["completed"] == 2  # original + replayed post

    def test_torn_result_discarded_and_reposted(self, tmp_path):
        """`spool.result` partial write: client detects, drops, reposts."""
        spool = tmp_path / "spool"
        policy = ChaosPolicy(specs=(
            ChaosSpec("partial_write", "spool.result", at=1),))
        with installed(policy):
            thread, _, errors = _run_server(spool)
            client = SpoolClient(spool, poll=0.02, timeout=120.0)
            records = client.submit_many([REQUEST])
            request_drain(spool, timeout=120.0)
            _join(thread, errors)
        assert records[0]["status"] == "done"
        assert client.corrupt_results == 1
        assert client.reposts == 1
