"""Telemetry: counters, percentiles, retry-after estimation, rendering."""

import pytest

from repro.dse import percentile
from repro.errors import AnalysisError
from repro.service import ServiceStats, format_stats


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestPercentile:
    def test_nearest_rank(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile(samples, 50) == 50
        assert percentile(samples, 95) == 95
        assert percentile(samples, 99) == 99
        assert percentile(samples, 100) == 100

    def test_single_sample(self):
        assert percentile([7], 50) == 7.0
        assert percentile([7], 99) == 7.0

    def test_unsorted_input(self):
        assert percentile([30, 10, 20], 50) == 20

    def test_empty_raises_no_samples(self):
        with pytest.raises(AnalysisError, match="no samples"):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bad_q(self):
        with pytest.raises(AnalysisError):
            percentile([1], 101)


class TestCounters:
    def test_hit_rate(self):
        stats = ServiceStats(clock=FakeClock())
        assert stats.hit_rate == 0.0
        for served_by, ok in (("executed", True), ("cache", True),
                              ("coalesced", True), ("executed", False)):
            stats.record_served(served_by)
            stats.record_done(0.1, ok=ok)
        assert stats.resolved == 4
        assert stats.completed == 3 and stats.failed == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_batch_fill(self):
        stats = ServiceStats(clock=FakeClock())
        stats.record_batch(4)
        stats.record_batch(2)
        assert stats.mean_batch_fill == pytest.approx(3.0)

    def test_latency_percentiles(self):
        stats = ServiceStats(clock=FakeClock())
        assert stats.latency_percentiles() == {"p50": 0.0, "p95": 0.0,
                                               "p99": 0.0}
        for value in (0.1, 0.2, 0.3, 0.4, 1.0):
            stats.record_done(value, ok=True)
        latency = stats.latency_percentiles()
        assert latency["p50"] == pytest.approx(0.3)
        assert latency["p99"] == pytest.approx(1.0)

    def test_window_bounds_memory(self):
        stats = ServiceStats(clock=FakeClock(), window=10)
        for value in range(100):
            stats.record_done(float(value), ok=True)
        assert len(stats._latencies) == 10
        assert stats.latency_percentiles()["p50"] >= 90.0  # latest win


class TestRetryAfter:
    def test_defaults_to_one_second_without_history(self):
        stats = ServiceStats(clock=FakeClock())
        assert stats.estimate_retry_after(depth=5) == 1.0

    def test_scales_with_depth_and_latency(self):
        stats = ServiceStats(clock=FakeClock())
        for _ in range(4):
            stats.record_done(0.5, ok=True)
        stats.in_flight = 1
        assert stats.estimate_retry_after(depth=10) == pytest.approx(5.0)

    def test_clamped(self):
        stats = ServiceStats(clock=FakeClock())
        stats.record_done(100.0, ok=True)
        assert stats.estimate_retry_after(depth=1000) == 30.0
        fast = ServiceStats(clock=FakeClock())
        fast.record_done(1e-6, ok=True)
        assert fast.estimate_retry_after(depth=1) == 0.05


class TestExport:
    def test_as_dict_and_render(self):
        clock = FakeClock()
        stats = ServiceStats(clock=clock)
        stats.record_submit()
        stats.record_served("executed")
        stats.record_done(0.25, ok=True)
        clock.now += 10.0
        payload = stats.as_dict()
        assert payload["submitted"] == 1
        assert payload["completed"] == 1
        assert payload["latency_s"]["p50"] == pytest.approx(0.25)
        assert payload["jobs_per_second"] == pytest.approx(0.1)
        text = format_stats(payload)
        assert "coalesce+cache hit rate" in text
        assert "latency p99" in text
        assert "250.0 ms" in text
