"""Isolation for warm-start tests: fresh store, snapshotting enabled."""

from __future__ import annotations

import pytest

from repro.kernel.builder import reset_program_cache
from repro.snapshot import reset_store


@pytest.fixture(autouse=True)
def fresh_snapshot_state(monkeypatch):
    """Each test starts with an empty store and REPRO_SNAPSHOT unset."""
    monkeypatch.delenv("REPRO_SNAPSHOT", raising=False)
    reset_store()
    reset_program_cache()
    yield
    reset_store()
    reset_program_cache()
