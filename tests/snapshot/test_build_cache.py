"""The content-addressed kernel build cache."""

import dataclasses

from repro.kernel.builder import (
    KernelBuilder,
    assemble_cached,
    build_kernel_system,
    reset_program_cache,
)
from repro.rtosunit.config import parse_config
from repro.workloads import yield_pingpong


def _builder():
    workload = yield_pingpong(iterations=2)
    return KernelBuilder(config=parse_config("vanilla"),
                         objects=workload.objects,
                         tick_period=workload.tick_period), workload


def test_assemble_is_memoized():
    builder, _ = _builder()
    source = builder.source()
    origin = builder.layout.text_base
    first = assemble_cached(source, origin)
    second = assemble_cached(source, origin)
    assert first[0] is second[0]
    assert first[1] is second[1]
    reset_program_cache()
    third = assemble_cached(source, origin)
    assert third[0] is not first[0]


def test_source_is_memoized_per_builder():
    builder, _ = _builder()
    assert builder.source() is builder.source()


def test_blob_matches_word_loader():
    """load_image (blob blit) and load (per-word) produce the same RAM."""
    from repro.cores.system import build_system

    builder, _ = _builder()
    program, blob = assemble_cached(builder.source(),
                                    builder.layout.text_base)
    via_words = build_system("cv32e40p", builder.config,
                             layout=builder.layout,
                             tick_period=builder.tick_period)
    via_words.load(program)
    via_blob = build_system("cv32e40p", builder.config,
                            layout=builder.layout,
                            tick_period=builder.tick_period)
    via_blob.load_image(program, blob)
    assert via_words.memory.data == via_blob.memory.data
    assert via_words.core.pc == via_blob.core.pc


def test_cached_build_runs_identically():
    builder, workload = _builder()
    reset_program_cache()
    cold = builder.build("cv32e40p")  # populates the cache
    warm = builder.build("cv32e40p")  # hits it
    assert cold.run(workload.max_cycles) == warm.run(workload.max_cycles)
    assert cold.core.cycle == warm.core.cycle
    assert [dataclasses.asdict(s) for s in cold.switches] == \
        [dataclasses.asdict(s) for s in warm.switches]


def test_distinct_configs_do_not_collide():
    workload = yield_pingpong(iterations=2)
    vanilla = build_kernel_system("cv32e40p", parse_config("vanilla"),
                                  workload.objects,
                                  tick_period=workload.tick_period)
    slt = build_kernel_system("cv32e40p", parse_config("SLT"),
                              workload.objects,
                              tick_period=workload.tick_period)
    assert vanilla.memory.data != slt.memory.data
