"""System.capture / System.restore round trips and resume correctness."""

import dataclasses

import pytest

from repro.kernel.builder import KernelBuilder
from repro.rtosunit.config import parse_config
from repro.workloads import sem_signal, yield_pingpong

CORES = ("cv32e40p", "cva6", "naxriscv")


def _build(core, config_name, workload):
    builder = KernelBuilder(config=parse_config(config_name),
                            objects=workload.objects,
                            tick_period=workload.tick_period)
    return builder.build(core, external_events=workload.external_events)


def _observable(system):
    core = system.core
    return {
        "cycle": core.cycle,
        "pc": core.pc,
        "regs": [list(bank) for bank in core.banks],
        "csr": dict(core.csr.regs),
        "stats": dict(vars(core.stats)),
        "switches": [dataclasses.asdict(s) for s in system.switches],
        "memory": bytes(system.memory.data),
        "console": list(system.console),
        "probes": list(system.probes),
        "unit_stats": (dict(vars(system.unit.stats))
                       if system.unit else None),
    }


@pytest.mark.parametrize("core", CORES)
@pytest.mark.parametrize("config_name", ("vanilla", "SLT"))
def test_final_state_round_trip(core, config_name):
    workload = yield_pingpong(iterations=3)
    system = _build(core, config_name, workload)
    assert system.run(workload.max_cycles) == 0
    snapshot = system.capture()
    clone = snapshot.materialize()
    assert _observable(clone) == _observable(system)


@pytest.mark.parametrize("core", CORES)
@pytest.mark.parametrize("config_name", ("vanilla", "SLT"))
def test_mid_run_capture_resumes_identically(core, config_name):
    """A clone restored from a mid-run checkpoint finishes byte-identical."""
    workload = sem_signal(iterations=3)
    reference = _build(core, config_name, workload)
    assert reference.run(workload.max_cycles) == 0

    system = _build(core, config_name, workload)
    checkpoints = []

    def hook(cpu):
        if not checkpoints:
            checkpoints.append(system.capture())
            cpu.switch_hook = None

    system.core.switch_hook = hook
    assert system.run(workload.max_cycles) == 0
    assert checkpoints, "no context switch ever completed"
    assert _observable(system) == _observable(reference)

    clone = checkpoints[0].materialize()
    assert not clone.core.halted
    assert clone.run(workload.max_cycles) == 0
    assert _observable(clone) == _observable(reference)


def test_restore_into_live_system_rewinds_it():
    workload = yield_pingpong(iterations=3)
    system = _build("cv32e40p", "vanilla", workload)
    assert system.run(workload.max_cycles) == 0
    snapshot = system.capture()
    before = _observable(system)
    # Wreck the live state, then rewind.
    system.core.banks[0][5] ^= 0xDEAD
    system.memory.write_word_raw(0x400, 0x12345678)
    system.core.stats.instret += 99
    system.restore(snapshot)
    assert _observable(system) == before
    assert snapshot.restores == 1


def test_capture_skips_timeline_busy_without_unit():
    workload = yield_pingpong(iterations=3)
    system = _build("cv32e40p", "vanilla", workload)
    assert system.run(workload.max_cycles) == 0
    snapshot = system.capture()
    assert snapshot.timeline_state[0] == ()

    unit_system = _build("cv32e40p", "SLT", workload)
    assert unit_system.run(workload.max_cycles) == 0
    clone = unit_system.capture().materialize()
    assert clone.timeline.core_cycles == unit_system.timeline.core_cycles
    assert clone.timeline.unit_cycles == unit_system.timeline.unit_cycles
