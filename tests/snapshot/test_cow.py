"""Copy-on-write behaviour across restores + code-cache lockstep."""

from repro.kernel.builder import KernelBuilder
from repro.rtosunit.config import parse_config
from repro.snapshot.pages import PAGE_SIZE
from repro.workloads import yield_pingpong


def _finished_system(core="cv32e40p", config_name="vanilla"):
    workload = yield_pingpong(iterations=3)
    builder = KernelBuilder(config=parse_config(config_name),
                            objects=workload.objects,
                            tick_period=workload.tick_period)
    system = builder.build(core)
    assert system.run(workload.max_cycles) == 0
    return system, workload


def test_restored_systems_share_clean_pages():
    system, _ = _finished_system()
    snapshot = system.capture()
    a = snapshot.materialize()
    b = snapshot.materialize()
    image_a = a.memory.capture_image()
    image_b = b.memory.capture_image()
    # Nothing ran since the restore: every page is still shared.
    assert image_a.shared_pages(snapshot.memory_image) == len(image_a.pages)
    assert image_b.shared_pages(snapshot.memory_image) == len(image_b.pages)
    # Shared storage, not duplicated per restore.
    assert image_a.unique_bytes() == snapshot.memory_image.unique_bytes()


def test_dirty_pages_are_isolated_between_restores():
    system, _ = _finished_system()
    snapshot = system.capture()
    a = snapshot.materialize()
    b = snapshot.materialize()
    addr = 8 * PAGE_SIZE + 16
    original = b.memory.read_word_raw(addr)
    a.memory.write_word_raw(addr, 0xCAFEBABE)
    assert b.memory.read_word_raw(addr) == original
    image_a = a.memory.capture_image()
    # Exactly one page diverged from the snapshot; the rest still share.
    assert (len(image_a.pages) - image_a.shared_pages(snapshot.memory_image)
            == 1)


def test_raw_write_invalidates_covering_block_after_restore():
    system, _ = _finished_system()
    snapshot = system.capture()
    system.restore(snapshot)  # clean restore: caches stay warm
    engine = system.core.block_engine
    assert engine is not None and engine.addr_map, "blocks never formed"
    word = next(iter(engine.addr_map))
    before = engine.invalidations
    system.memory.write_word_raw(word, 0x00000013)  # nop over cached code
    assert word not in engine.addr_map
    assert engine.invalidations == before + 1


def test_flip_bit_invalidates_covering_block_after_restore():
    system, _ = _finished_system()
    snapshot = system.capture()
    system.restore(snapshot)
    engine = system.core.block_engine
    word = next(iter(engine.addr_map))
    system.memory.flip_bit(word, 3)
    assert word not in engine.addr_map


def test_dirty_restore_invalidates_stale_blocks():
    """Restoring over diverged memory must drop blocks covering it."""
    system, workload = _finished_system()
    snapshot = system.capture()
    engine = system.core.block_engine
    assert engine.addr_map
    # Diverge one cached code word, then rewind to the snapshot: the
    # restore rewrites that page and must invalidate its blocks.
    word = next(iter(engine.addr_map))
    system.memory.data[word] ^= 0x01  # silent poke, no hooks
    system.restore(snapshot)
    assert word not in engine.addr_map
    # And the rewound system still runs correctly from its final state
    # (halted, so a re-run is a no-op returning the same exit code).
    assert system.core.halted
