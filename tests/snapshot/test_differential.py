"""Suite-level differential: warm-started runs vs the exact cold path.

Every RTOSBench workload runs on every core model on both the software
baseline and a hardware-assisted configuration, once cold (warm-start
disabled) and once warm (replayed from the snapshot store). The two
must agree on everything observable — the latency distribution, every
switch record, cycle/instret, the full core and RTOSUnit stats, and the
end-of-run machine state down to the last RAM byte. This is the
acceptance test for the byte-identity contract in docs/SNAPSHOT.md.
"""

import dataclasses

import pytest

from repro.cores import CORE_NAMES
from repro.harness.experiment import run_workload
from repro.kernel.builder import KernelBuilder
from repro.rtosunit.config import parse_config
from repro.snapshot import final_system
from repro.workloads.suite import RTOSBENCH_WORKLOADS

ITERATIONS = 3
CONFIGS = ("vanilla", "SLT")


def _result_obs(result):
    return {
        "latencies": result.latencies,
        "switches": [dataclasses.asdict(s) for s in result.switches],
        "cycles": result.cycles,
        "instret": result.instret,
        "core_stats": dict(vars(result.core_stats)),
        "unit_stats": (dict(vars(result.unit_stats))
                       if result.unit_stats else None),
        "stats": dataclasses.asdict(result.stats),
    }


def _system_obs(system):
    return {
        "regs": [list(bank) for bank in system.core.banks],
        "pc": system.core.pc,
        "csr": dict(system.core.csr.regs),
        "memory": bytes(system.memory.data),
        "console": list(system.console),
        "probes": list(system.probes),
    }


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("core_name", sorted(CORE_NAMES))
def test_warm_runs_byte_identical_to_cold(core_name, config_name,
                                          monkeypatch):
    config = parse_config(config_name)
    for factory in RTOSBENCH_WORKLOADS:
        workload = factory(iterations=ITERATIONS)

        monkeypatch.setenv("REPRO_SNAPSHOT", "0")
        cold = run_workload(core_name, config, workload)
        monkeypatch.delenv("REPRO_SNAPSHOT")

        populate = run_workload(core_name, config, workload)  # cold + capture
        warm = run_workload(core_name, config, workload)      # replay

        for label, other in (("populate", populate), ("warm", warm)):
            assert _result_obs(other) == _result_obs(cold), (
                f"{core_name}/{config_name}/{workload.name}: "
                f"{label} run diverged from the exact cold path")

        # End-of-run machine state, down to RAM bytes: compare the
        # materialized final snapshot against a from-scratch cold system.
        builder = KernelBuilder(config=config, objects=workload.objects,
                                tick_period=workload.tick_period)
        reference = builder.build(core_name,
                                  external_events=workload.external_events)
        reference.run(workload.max_cycles)
        warm_system = final_system(core_name, config, workload)
        assert warm_system is not None
        assert _system_obs(warm_system) == _system_obs(reference), (
            f"{core_name}/{config_name}/{workload.name}: final machine "
            f"state diverged warm vs cold")
