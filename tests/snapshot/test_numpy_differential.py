"""Backend differential: vectorised page scans vs the bytearray loop.

Property-style sweep over seeded RAM mutation histories. For every
scenario the whole capture / CoW-share / restore cycle runs once with
the NumPy fast paths (``REPRO_NUMPY=1``) and once with the loop
fallback (``REPRO_NUMPY=0``); the two backends must agree on

* the captured page tuples (byte-identical images),
* the dirty ranges reported by ``restore_image``,
* CoW accounting — identity-shared page counts and ``unique_bytes``,
* interning of all-zero pages.
"""

import random

import pytest

from repro.mem.substrate import get_numpy
from repro.snapshot.pages import (PAGE_SIZE, _ZERO_PAGE, capture_image,
                                  restore_image)

pytestmark = pytest.mark.skipif(get_numpy() is None,
                                reason="differential needs numpy installed")

NPAGES = 6
SEEDS = (0, 1, 2, 3)


def _mutate(data: bytearray, rng: random.Random) -> None:
    """A few writes of varied shapes: words, spans, page clears."""
    for _ in range(rng.randrange(1, 6)):
        kind = rng.randrange(3)
        if kind == 0:  # word poke
            addr = rng.randrange(0, len(data) - 4)
            data[addr:addr + 4] = rng.randbytes(4)
        elif kind == 1:  # multi-page span
            start = rng.randrange(0, len(data) // 2)
            span = rng.randrange(1, 2 * PAGE_SIZE)
            data[start:start + span] = bytes([rng.randrange(256)]) * min(
                span, len(data) - start)
        else:  # clear a whole page back to zero
            page = rng.randrange(NPAGES)
            data[page * PAGE_SIZE:(page + 1) * PAGE_SIZE] = _ZERO_PAGE


def _history(seed: int, monkeypatch, numpy_flag: str):
    """One capture/restore history; returns the observable trace."""
    monkeypatch.setenv("REPRO_NUMPY", numpy_flag)
    rng = random.Random(seed)
    data = bytearray(NPAGES * PAGE_SIZE)
    trace = []
    base = None
    for _ in range(4):
        _mutate(data, rng)
        image = capture_image(data, base)
        shared = image.shared_pages(base) if base is not None else 0
        zero_interned = sum(1 for page in image.pages
                            if page is _ZERO_PAGE)
        trace.append({
            "pages": image.pages,
            "size": image.size,
            "shared_with_base": shared,
            "unique_bytes": image.unique_bytes(),
            "zero_interned": zero_interned,
        })
        base = image
    # Restore the *first* image into the final RAM state and record
    # which ranges the restorer considered dirty.
    first_pages = trace[0]["pages"]
    from repro.snapshot.pages import MemoryImage

    dirty = restore_image(data, MemoryImage(first_pages, len(data)))
    trace.append({"restore_dirty": dirty, "restored": bytes(data)})
    assert bytes(data) == b"".join(first_pages)
    return trace


@pytest.mark.parametrize("seed", SEEDS)
def test_backends_agree_on_capture_restore_history(seed, monkeypatch):
    numpy_trace = _history(seed, monkeypatch, "1")
    loop_trace = _history(seed, monkeypatch, "0")
    assert numpy_trace == loop_trace


def test_zero_page_interning_and_unique_bytes(monkeypatch):
    for flag in ("1", "0"):
        monkeypatch.setenv("REPRO_NUMPY", flag)
        data = bytearray(4 * PAGE_SIZE)
        data[PAGE_SIZE + 3] = 0x7F
        image = capture_image(data)
        # Three all-zero pages intern to the module-level zero page...
        assert sum(1 for p in image.pages if p is _ZERO_PAGE) == 3
        # ...so distinct storage is one zero page + one payload page.
        assert image.unique_bytes() == 2 * PAGE_SIZE

        # Clearing the payload page makes a fully-interned image whose
        # unique storage is the single shared zero page.
        data[PAGE_SIZE + 3] = 0
        cleared = capture_image(data, image)
        assert cleared.unique_bytes() == PAGE_SIZE
        assert cleared.shared_pages(image) == 3


def test_unchanged_recapture_shares_every_page(monkeypatch):
    for flag in ("1", "0"):
        monkeypatch.setenv("REPRO_NUMPY", flag)
        data = bytearray(3 * PAGE_SIZE)
        data[10:20] = b"\xEE" * 10
        first = capture_image(data)
        second = capture_image(data, first)
        assert second.shared_pages(first) == 3
        assert second.unique_bytes() == first.unique_bytes()


def test_non_page_aligned_ram_uses_loop_on_both(monkeypatch):
    for flag in ("1", "0"):
        monkeypatch.setenv("REPRO_NUMPY", flag)
        data = bytearray(2 * PAGE_SIZE + 100)
        data[-1] = 0x42
        image = capture_image(data)
        blank = bytearray(len(data))
        restore_image(blank, image)
        assert blank == data
