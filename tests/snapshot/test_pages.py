"""Unit tests for the copy-on-write page image layer."""

import pytest

from repro.snapshot.pages import (
    PAGE_SIZE,
    capture_image,
    restore_image,
)


def _ram(size=4 * PAGE_SIZE):
    data = bytearray(size)
    data[100:104] = b"\x01\x02\x03\x04"
    data[PAGE_SIZE + 8:PAGE_SIZE + 12] = b"\xAA\xBB\xCC\xDD"
    return data


def test_round_trip():
    data = _ram()
    image = capture_image(data)
    blank = bytearray(len(data))
    dirty = restore_image(blank, image)
    assert blank == data
    # Only the two non-zero pages needed writing.
    assert [start for start, _ in dirty] == [0, PAGE_SIZE]


def test_zero_pages_are_interned():
    a = capture_image(bytearray(3 * PAGE_SIZE))
    b = capture_image(bytearray(3 * PAGE_SIZE))
    # Independent captures of all-zero RAM share one page object.
    assert len({id(p) for p in a.pages + b.pages}) == 1
    assert a.unique_bytes() == PAGE_SIZE


def test_recapture_shares_clean_pages_with_base():
    data = _ram()
    base = capture_image(data)
    data[PAGE_SIZE + 8] ^= 0xFF  # dirty exactly one page
    image = capture_image(data, base)
    assert image.shared_pages(base) == len(base.pages) - 1
    assert image.pages[0] is base.pages[0]
    assert image.pages[1] is not base.pages[1]


def test_restore_after_capture_touches_nothing():
    data = _ram()
    image = capture_image(data)
    assert restore_image(data, image) == []


def test_restore_reports_only_dirty_pages():
    data = _ram()
    image = capture_image(data)
    data[2 * PAGE_SIZE + 4] = 0x5A
    dirty = restore_image(data, image)
    assert dirty == [(2 * PAGE_SIZE, PAGE_SIZE)]
    assert data == _ram()


def test_size_mismatch_rejected():
    image = capture_image(bytearray(2 * PAGE_SIZE))
    with pytest.raises(ValueError):
        restore_image(bytearray(3 * PAGE_SIZE), image)


def test_partial_tail_page():
    data = bytearray(PAGE_SIZE + 100)
    data[-1] = 7
    image = capture_image(data)
    assert len(image.pages[-1]) == 100
    blank = bytearray(len(data))
    restore_image(blank, image)
    assert blank == data
