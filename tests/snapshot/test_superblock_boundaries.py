"""Snapshot boundaries taken while the superblock tier is warm.

The tiered interpreter (docs/PERF.md) keeps no architectural state of
its own — superblocks are pure caches over predecoded records — so a
``System.capture()`` taken mid-run, with hot traces already promoted
and dispatching, must restore to a state whose continued run is
byte-identical to an uninterrupted cold run. These tests pin that
contract on all three cores, including the OoO model whose batched
``_time_block`` state lives entirely in the core (nothing mid-batch
survives a return to Python).
"""

import pytest

from tests.snapshot.test_capture_restore import _build, _observable
from repro.workloads import yield_pingpong

CORES = ("cv32e40p", "cva6", "naxriscv")

#: Enough loop trips for SUPERBLOCK_HOT promotions well before the end.
ITERATIONS = 24


def _checkpoint_with_warm_tier(system):
    """Run *system*, capturing at the first switch after a promotion.

    Returns the snapshot; asserts the run completed and that the
    superblock tier really was warm (promotions observed) at capture
    time — a checkpoint taken before any promotion would test nothing.
    """
    checkpoints = []

    def hook(cpu):
        engine = cpu.block_engine
        if engine is not None and engine.superblocks and not checkpoints:
            checkpoints.append((system.capture(), engine.superblocks))
            cpu.switch_hook = None

    system.core.switch_hook = hook
    assert system.run(1_000_000) == 0
    assert checkpoints, "no superblock was promoted before any switch"
    snapshot, promoted = checkpoints[0]
    assert promoted > 0
    return snapshot


@pytest.mark.parametrize("core", CORES)
@pytest.mark.parametrize("config_name", ("vanilla", "SLT"))
def test_mid_superblock_capture_resumes_identically(core, config_name):
    """Clone from a warm-tier checkpoint finishes byte-identical to cold."""
    workload = yield_pingpong(iterations=ITERATIONS)
    reference = _build(core, config_name, workload)
    assert reference.run(workload.max_cycles) == 0

    system = _build(core, config_name, workload)
    snapshot = _checkpoint_with_warm_tier(system)
    # Capturing must not have perturbed the donor run.
    assert _observable(system) == _observable(reference)

    clone = snapshot.materialize()
    assert not clone.core.halted
    assert clone.run(workload.max_cycles) == 0
    assert _observable(clone) == _observable(reference)
    # The clone re-warms its own tier while finishing the trace.
    assert clone.core.perf_counters()["superblocks"] > 0


@pytest.mark.parametrize("core", CORES)
def test_restore_rewinds_live_warm_tier(core):
    """Rewinding a finished system onto a mid-run checkpoint replays it.

    The restore path must invalidate every cached block/superblock
    covering memory the rewind dirties (the lockstep contract) — stale
    promoted traces would otherwise replay the pre-rewind program.
    """
    workload = yield_pingpong(iterations=ITERATIONS)
    reference = _build(core, "SLT", workload)
    assert reference.run(workload.max_cycles) == 0

    system = _build(core, "SLT", workload)
    snapshot = _checkpoint_with_warm_tier(system)
    system.restore(snapshot)
    assert not system.core.halted
    assert system.run(workload.max_cycles) == 0
    assert _observable(system) == _observable(reference)
