"""Warm-start tiers, gating and accounting in run_workload."""

import pytest

from repro.harness.experiment import run_workload
from repro.rtosunit.config import parse_config
from repro.snapshot import final_system, snapshot_enabled, store
from repro.workloads import yield_pingpong


def _run(guard=None):
    workload = yield_pingpong(iterations=3)
    return run_workload("cv32e40p", parse_config("vanilla"), workload,
                        guard=guard), workload


def _result_key(result):
    return (result.latencies,
            [(s.trigger_cycle, s.entry_cycle, s.mret_cycle)
             for s in result.switches],
            result.cycles, result.instret, dict(vars(result.core_stats)))


def test_snapshot_enabled_parsing(monkeypatch):
    for value, expected in (("1", True), ("", True), ("yes", True),
                            ("0", False), ("false", False), ("off", False),
                            ("No", False)):
        monkeypatch.setenv("REPRO_SNAPSHOT", value)
        assert snapshot_enabled() is expected
    monkeypatch.delenv("REPRO_SNAPSHOT")
    assert snapshot_enabled() is True


def test_miss_then_final_hit():
    cold, _ = _run()
    warm, _ = _run()
    stats = store().stats
    assert stats.misses == 1
    assert stats.final_hits == 1
    assert stats.boundary_captures == 1
    assert stats.final_captures == 1
    assert _result_key(cold) == _result_key(warm)


def test_boundary_tier_resumes():
    cold, workload = _run()
    # Drop the final snapshot so the next run must resume the boundary.
    entry = next(iter(store()._entries.values()))
    assert entry.boundary is not None
    entry.final = None
    warm, _ = _run()
    assert store().stats.boundary_hits == 1
    assert _result_key(cold) == _result_key(warm)


def test_env_gate_bypasses_store(monkeypatch):
    monkeypatch.setenv("REPRO_SNAPSHOT", "0")
    _run()
    _run()
    assert len(store()) == 0
    assert store().stats.misses == 0


def test_guard_forces_exact_path():
    class NullGuard:
        def on_step(self, core):
            pass

        def check(self, core):
            pass

    cold, _ = _run()
    guarded, _ = _run(guard=NullGuard())
    assert store().stats.bypasses == 1
    assert store().stats.final_hits == 0  # guard never reads warm state
    assert _result_key(cold) == _result_key(guarded)


def test_final_system_exposes_end_state():
    workload = yield_pingpong(iterations=3)
    config = parse_config("vanilla")
    assert final_system("cv32e40p", config, workload) is None
    run_workload("cv32e40p", config, workload)
    system = final_system("cv32e40p", config, workload)
    assert system is not None
    assert system.core.halted
    assert system.core.exit_code == 0


def test_results_shared_across_seeds():
    """The seed never perturbs the simulation, so warm state is shared."""
    workload = yield_pingpong(iterations=3)
    config = parse_config("vanilla")
    a = run_workload("cv32e40p", config, workload, seed=1)
    b = run_workload("cv32e40p", config, workload, seed=2)
    assert store().stats.final_hits == 1
    assert a.seed == 1 and b.seed == 2
    assert a.latencies == b.latencies


def test_distinct_workload_params_get_distinct_entries():
    import dataclasses

    workload = yield_pingpong(iterations=3)
    config = parse_config("vanilla")
    run_workload("cv32e40p", config, workload)
    shifted = dataclasses.replace(workload, tick_period=workload.tick_period
                                  + 1000)
    run_workload("cv32e40p", config, shifted)
    assert store().stats.misses == 2
    assert len(store()) == 2
