"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("table1", "fig9", "fig10", "fig11", "fig12",
                        "fig13", "wcet", "run", "asm"):
            assert command in text

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SWITCH_RF" in out

    def test_run(self, capsys):
        assert main(["run", "--workload", "yield_pingpong",
                     "--config", "SLT", "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "switches=" in out

    def test_wcet_single_config(self, capsys):
        assert main(["wcet", "--config", "SLT"]) == 0
        assert "SLT" in capsys.readouterr().out

    def test_fig10_subset(self, capsys):
        assert main(["fig10", "--cores", "cv32e40p",
                     "--configs", "vanilla,SLT"]) == 0
        out = capsys.readouterr().out
        assert "mm2" in out

    def test_fig11_subset(self, capsys):
        assert main(["fig11", "--cores", "cva6",
                     "--configs", "vanilla,S"]) == 0
        assert "GHz" in capsys.readouterr().out

    def test_fig12(self, capsys):
        assert main(["fig12"]) == 0
        assert "64" in capsys.readouterr().out

    def test_fig9_small_grid(self, capsys):
        assert main(["fig9", "--cores", "cv32e40p",
                     "--configs", "vanilla,SLT",
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "jitter" in out
        assert "WCET" in out

    def test_asm_listing(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("start:\n    li a0, 1\n    add a1, a0, a0\n")
        assert main(["asm", str(source)]) == 0
        out = capsys.readouterr().out
        assert "add a1, a0, a0" in out

    def test_asm_symbols(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("start:\n    nop\nend:\n    nop\n")
        assert main(["asm", str(source), "--symbols"]) == 0
        out = capsys.readouterr().out
        assert "start" in out and "end" in out
