"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("table1", "fig9", "fig10", "fig11", "fig12",
                        "fig13", "wcet", "run", "asm", "dse", "faults",
                        "fuzz", "workloads", "ladder", "personalities"):
            assert command in text

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SWITCH_RF" in out

    def test_run(self, capsys):
        assert main(["run", "--workload", "yield_pingpong",
                     "--config", "SLT", "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "switches=" in out

    def test_personalities(self, capsys):
        assert main(["personalities"]) == 0
        out = capsys.readouterr().out
        for name in ("freertos", "scm", "echronos"):
            assert name in out

    def test_run_with_personality_suffix(self, capsys):
        assert main(["run", "--workload", "ladder_switch",
                     "--config", "vanilla@scm", "--iterations", "3"]) == 0
        assert "switches=" in capsys.readouterr().out

    def test_unknown_personality_suggests(self, capsys):
        assert main(["run", "--config", "vanilla@freertoss",
                     "--workload", "yield_pingpong"]) == 1
        assert "did you mean 'freertos'" in capsys.readouterr().err

    def test_ladder_subset(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "ladder.json"
        assert main(["ladder", "--cores", "cv32e40p",
                     "--configs", "vanilla", "--iterations", "3",
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "| vanilla | scm |" in out
        record = json.loads(json_path.read_text())
        assert record["bench"] == "ladder"
        assert len(record["rows"]) == 3

    def test_wcet_single_config(self, capsys):
        assert main(["wcet", "--config", "SLT"]) == 0
        assert "SLT" in capsys.readouterr().out

    def test_fig10_subset(self, capsys):
        assert main(["fig10", "--cores", "cv32e40p",
                     "--configs", "vanilla,SLT"]) == 0
        out = capsys.readouterr().out
        assert "mm2" in out

    def test_fig11_subset(self, capsys):
        assert main(["fig11", "--cores", "cva6",
                     "--configs", "vanilla,S"]) == 0
        assert "GHz" in capsys.readouterr().out

    def test_fig12(self, capsys):
        assert main(["fig12"]) == 0
        assert "64" in capsys.readouterr().out

    def test_fig9_small_grid(self, capsys):
        assert main(["fig9", "--cores", "cv32e40p",
                     "--configs", "vanilla,SLT",
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "jitter" in out
        assert "WCET" in out

    def test_asm_listing(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("start:\n    li a0, 1\n    add a1, a0, a0\n")
        assert main(["asm", str(source)]) == 0
        out = capsys.readouterr().out
        assert "add a1, a0, a0" in out

    def test_asm_symbols(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("start:\n    nop\nend:\n    nop\n")
        assert main(["asm", str(source), "--symbols"]) == 0
        out = capsys.readouterr().out
        assert "start" in out and "end" in out


class TestDseCommand:
    def test_table_lists_every_config_once_per_core(self, capsys):
        from repro.rtosunit.config import EVALUATED_CONFIGS

        assert main(["dse", "--cores", "cv32e40p",
                     "--workloads", "yield_pingpong",
                     "--iterations", "2", "--no-progress"]) == 0
        out = capsys.readouterr().out
        table = [line for line in out.splitlines()
                 if line.strip().startswith("cv32e40p")]
        configs = [line.split()[1] for line in table]
        assert sorted(configs) == sorted(EVALUATED_CONFIGS)
        for line in table:
            assert "non-dominated" in line or "dominated by" in line
        assert "Pareto frontier over objectives" in out
        assert "grid: 12 runs" in out

    def test_json_cache_second_pass_is_all_hits(self, tmp_path, capsys):
        import json

        argv = ["dse", "--cores", "cv32e40p", "--configs", "vanilla,SLT",
                "--workloads", "yield_pingpong,delay_periodic",
                "--iterations", "2", "--no-progress",
                "--cache-dir", str(tmp_path / "cache")]
        cold = tmp_path / "cold.json"
        warm = tmp_path / "warm.json"
        assert main(argv + ["--json", str(cold)]) == 0
        assert main(argv + ["--json", str(warm)]) == 0
        capsys.readouterr()
        cold_data = json.loads(cold.read_text())
        warm_data = json.loads(warm.read_text())
        assert cold_data["cache"]["hit_rate"] == 0.0
        assert warm_data["cache"]["hit_rate"] == 1.0
        assert cold_data["sweep"] == warm_data["sweep"]
        assert cold_data["frontier"] == warm_data["frontier"]

    def test_cache_summary_line_printed(self, tmp_path, capsys):
        assert main(["dse", "--cores", "cv32e40p", "--configs", "vanilla",
                     "--workloads", "yield_pingpong", "--iterations", "2",
                     "--no-progress",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "cache: 0 hits, 1 misses, 0 invalidated (hit rate 0.0%)" in out

    def test_resume_reports_checkpoint(self, tmp_path, capsys):
        argv = ["dse", "--cores", "cv32e40p", "--configs", "vanilla",
                "--workloads", "yield_pingpong", "--iterations", "2",
                "--no-progress", "--resume",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "resume: 1/1 grid points already complete" in \
            capsys.readouterr().out

    def test_bad_objectives_fail(self, capsys):
        assert main(["dse", "--objectives", "latency,speed"]) == 1
        assert "unknown objective" in capsys.readouterr().err

    def test_resume_without_cache_dir_rejected(self, capsys):
        assert main(["dse", "--resume", "--no-progress"]) == 2
        assert "--resume needs --cache-dir" in capsys.readouterr().err


class TestFuzzCommand:
    def test_quick_campaign_runs(self, capsys):
        assert main(["fuzz", "--quick", "--seed", "7",
                     "--families", "queue_mesh"]) == 0
        out = capsys.readouterr().out
        assert "Fuzz campaign (seed 7)" in out
        assert "queue_mesh" in out
        assert "baseline cv32e40p/vanilla" in out

    def test_json_export_is_byte_identical_per_seed(self, tmp_path, capsys):
        argv = ["fuzz", "--quick", "--seed", "7",
                "--families", "expiry_burst"]
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(argv + ["--json", str(first)]) == 0
        assert main(argv + ["--json", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_unknown_family_fails_with_suggestion(self, capsys):
        assert main(["fuzz", "--quick", "--families", "irq_strom"]) == 1
        assert "did you mean" in capsys.readouterr().err

    def test_run_accepts_fuzz_scenario_names(self, capsys):
        assert main(["run", "--workload", "fuzz:queue_mesh:s3:stages=2",
                     "--config", "SLT", "--iterations", "3"]) == 0
        assert "switches=" in capsys.readouterr().out


class TestWorkloadsCommand:
    def test_lists_fixed_suite_and_fuzz_families(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "yield_pingpong" in out
        assert "fuzz:irq_storm:s<seed>" in out
        assert "fuzz:mixed_crit:s<seed>" in out
