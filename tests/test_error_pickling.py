"""Structured errors must survive the process-pool boundary intact.

Regression suite for the chaos-hardening audit: every error class that
carries keyword context is raised in pool workers and rebuilt in the
parent, so a lossy (or outright broken) pickle round-trip would either
strip the context the service's error records are built from, or kill
result collection with a ``TypeError`` at unpickle time.
"""

import pickle

import pytest

from repro.errors import (
    AssemblerError,
    CircuitOpenError,
    PoisonPointError,
    QueueFullError,
    SimulationError,
)
from repro.service.worker import error_record


def _round_trip(exc):
    return pickle.loads(pickle.dumps(exc))


class TestContextSurvivesPickling:
    def test_simulation_error(self):
        exc = _round_trip(SimulationError(
            "trap", pc=0x80000010, cycle=1234, mcause=0xB,
            kind="livelock", trace="line1\nline2"))
        assert type(exc) is SimulationError
        assert (exc.pc, exc.cycle, exc.mcause) == (0x80000010, 1234, 0xB)
        assert exc.kind == "livelock"
        assert exc.trace == "line1\nline2"
        assert "pc=0x80000010" in str(exc)

    def test_queue_full_error(self):
        exc = _round_trip(QueueFullError(
            "queue full", retry_after=1.5, depth=7, capacity=8,
            tier="bulk"))
        assert type(exc) is QueueFullError
        assert exc.retry_after == 1.5
        assert (exc.depth, exc.capacity, exc.tier) == (7, 8, "bulk")

    def test_circuit_open_error_keeps_subclass(self):
        exc = _round_trip(CircuitOpenError(
            "circuit open", retry_after=30.0, depth=0, capacity=8))
        assert type(exc) is CircuitOpenError
        assert isinstance(exc, QueueFullError)
        assert exc.retry_after == 30.0

    def test_poison_point_error(self):
        exc = _round_trip(PoisonPointError(
            "quarantined", label="cv32e40p/SLT/yield_pingpong",
            attempts=2, reason="InjectedCrash: chaos"))
        assert type(exc) is PoisonPointError
        assert exc.label == "cv32e40p/SLT/yield_pingpong"
        assert exc.attempts == 2
        assert exc.reason == "InjectedCrash: chaos"

    def test_assembler_error(self):
        exc = _round_trip(AssemblerError(
            "unknown mnemonic", line=12, source="frobnicate x1, x2"))
        assert type(exc) is AssemblerError
        assert (exc.line, exc.source) == (12, "frobnicate x1, x2")
        assert "line 12" in str(exc)

    def test_context_free_raises_stay_picklable(self):
        exc = _round_trip(SimulationError("plain message"))
        assert exc.pc is None and exc.kind is None
        assert str(exc) == "plain message"


class TestErrorRecordFidelity:
    """error_record built from an *unpickled* exception loses nothing."""

    @pytest.mark.parametrize("exc,expected", [
        (SimulationError("trap", pc=16, cycle=9, mcause=2, kind="guard"),
         {"pc": 16, "cycle": 9, "mcause": 2, "kind": "guard"}),
        (PoisonPointError("q", label="pt", attempts=3, reason="crash"),
         {"label": "pt", "attempts": 3, "reason": "crash"}),
        (QueueFullError("full", retry_after=0.5, tier="batch"),
         {"retry_after": 0.5, "tier": "batch"}),
    ])
    def test_record_identical_across_boundary(self, exc, expected):
        local = error_record(exc)
        remote = error_record(_round_trip(exc))
        assert local == remote
        for key, value in expected.items():
            assert remote[key] == value
        assert remote["type"] == type(exc).__name__
