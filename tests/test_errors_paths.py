"""Error-path coverage: every failure surfaces as the right ReproError
subclass with populated context — no bare Exception escapes."""

import pytest

from repro import errors
from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    MemoryError_,
    ReproError,
    SimulationError,
)
from repro.mem.memory import Memory
from repro.rtosunit.config import parse_config


# -- repro.errors shape --------------------------------------------------------


def test_all_exports_exist_and_derive_from_repro_error():
    assert "ReproError" in errors.__all__
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, ReproError)
        if cls is not ReproError:
            assert issubclass(cls, Exception)


def test_simulation_error_context_is_attached_and_rendered():
    err = SimulationError("boom", pc=0x1C0, cycle=1234, mcause=0x8000_0007,
                          kind="livelock", trace="  cycle 1  pc 0x00000000")
    assert (err.pc, err.cycle, err.mcause, err.kind) == (
        0x1C0, 1234, 0x8000_0007, "livelock")
    text = str(err)
    assert "boom [pc=0x000001c0 cycle=1234 mcause=0x80000007]" in text
    assert "last trace entries:" in text


def test_simulation_error_plain_message_still_works():
    err = SimulationError("plain")
    assert str(err) == "plain"
    assert err.pc is None and err.kind is None


# -- out-of-range memory -------------------------------------------------------


def test_out_of_range_read_raises_memory_error():
    memory = Memory(size=1024)
    with pytest.raises(MemoryError_):
        memory.read_word_raw(2048)


def test_misaligned_bit_flip_is_rejected():
    memory = Memory(size=1024)
    with pytest.raises(MemoryError_):
        memory.flip_bit(4, 32)
    with pytest.raises(MemoryError_):
        memory.flip_bit(4, -1)


def test_wild_load_during_simulation_is_memory_error():
    from tests.cores.helpers import run_fragment

    with pytest.raises(MemoryError_) as excinfo:
        run_fragment("""
    li   t0, 0x00800000
    lw   t1, 0(t0)
""")
    assert isinstance(excinfo.value, ReproError)


# -- exhausted cycle budget ----------------------------------------------------


def test_exhausted_cycle_budget_is_structured_simulation_error():
    from repro.cores import CORE_CLASSES
    from repro.cores.system import System
    from repro.isa.assembler import assemble

    system = System(CORE_CLASSES["cv32e40p"], parse_config("vanilla"),
                    tick_period=1 << 30)
    system.load(assemble("spin:\n    j spin\n", origin=0))
    with pytest.raises(SimulationError) as excinfo:
        system.run(max_cycles=500)
    err = excinfo.value
    assert err.kind == "cycle-budget"
    assert err.pc is not None
    assert err.cycle is not None and err.cycle > 500
    assert "pc=0x" in str(err)


# -- invalid configurations ----------------------------------------------------


def test_unknown_config_letter_is_named_and_suggested():
    with pytest.raises(ConfigurationError) as excinfo:
        parse_config("SLX")
    message = str(excinfo.value)
    assert "'X'" in message
    assert "'SLX'" in message
    assert "valid letters" in message
    assert "did you mean" in message


def test_duplicate_config_letter_is_rejected():
    with pytest.raises(ConfigurationError) as excinfo:
        parse_config("SLL")
    assert "duplicate" in str(excinfo.value)


def test_invalid_combination_gets_a_suggestion():
    with pytest.raises(ConfigurationError) as excinfo:
        parse_config("LO")  # load without store is invalid
    assert "did you mean" in str(excinfo.value)


def test_suggestion_names_a_real_evaluated_config():
    from repro.rtosunit.config import EVALUATED_CONFIGS

    with pytest.raises(ConfigurationError) as excinfo:
        parse_config("SLQ")
    message = str(excinfo.value)
    assert any(f"{name!r}" in message for name in EVALUATED_CONFIGS)


# -- fault specs ---------------------------------------------------------------


def test_bad_fault_spec_is_fault_injection_error():
    from repro.faults import FaultSpec

    with pytest.raises(FaultInjectionError):
        FaultSpec("gamma_ray", cycle=0)
    assert issubclass(FaultInjectionError, ReproError)
