"""Public API surface: imports, exports, versioning."""

import importlib

import pytest

_PUBLIC_MODULES = (
    "repro",
    "repro.analysis",
    "repro.asic",
    "repro.cli",
    "repro.cores",
    "repro.harness",
    "repro.isa",
    "repro.kernel",
    "repro.mem",
    "repro.rtosunit",
    "repro.wcet",
    "repro.workloads",
)


@pytest.mark.parametrize("name", _PUBLIC_MODULES)
def test_module_imports_cleanly(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_exports_resolve():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize("name", _PUBLIC_MODULES)
def test_all_exports_exist(name):
    module = importlib.import_module(name)
    for export in getattr(module, "__all__", ()):
        assert hasattr(module, export), f"{name}.{export}"


def test_key_entry_points_callable():
    from repro.harness import run_suite, run_workload, sweep
    from repro.kernel import build_kernel_system
    from repro.rtosunit.config import parse_config
    from repro.wcet import analyze_bounds, analyze_config

    for fn in (run_suite, run_workload, sweep, build_kernel_system,
               parse_config, analyze_bounds, analyze_config):
        assert callable(fn)
