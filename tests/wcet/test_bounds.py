"""Static BCET/WCET bounds and the derived jitter bounds."""

import pytest

from repro.harness import run_suite
from repro.rtosunit.config import parse_config
from repro.wcet import analyze_bounds

#: Static bounds model the interrupt response as exactly the trap-entry
#: cost; at runtime the trigger can land within a couple of cycles of an
#: instruction boundary, so measurements scatter by up to this much
#: around the path bounds.
_RESPONSE_SLACK = 6


@pytest.fixture(scope="module")
def bounds():
    names = ("vanilla", "SL", "T", "SLT", "SDLOT", "SPLIT")
    return {name: analyze_bounds(parse_config(name)) for name in names}


@pytest.fixture(scope="module")
def measured():
    names = ("vanilla", "SL", "T", "SLT", "SDLOT", "SPLIT")
    return {name: run_suite("cv32e40p", parse_config(name),
                            iterations=5).stats for name in names}


class TestBoundStructure:
    def test_bcet_no_greater_than_wcet(self, bounds):
        for name, bound in bounds.items():
            assert bound.bcet_cycles <= bound.wcet_cycles, name

    def test_slt_jitter_bound_is_zero(self, bounds):
        """The static counterpart of 'jitter eliminated entirely' (§7):
        every (SLT) ISR path costs exactly the same."""
        assert bounds["SLT"].jitter_bound == 0

    def test_hw_sched_bounds_are_tight(self, bounds):
        assert bounds["T"].jitter_bound <= 4

    def test_sw_sched_bounds_are_wide(self, bounds):
        """Vanilla's path spread (no delayed tasks vs eight) dominates."""
        assert bounds["vanilla"].jitter_bound > 400

    def test_preload_bound_is_the_31_cycle_hit_saving(self, bounds):
        """§6.1: correct preloads save up to 31 cycles vs (SLT) — the
        bound pins this to the 31-word restore skipped on a hit."""
        saving = bounds["SLT"].bcet_cycles - bounds["SPLIT"].bcet_cycles
        assert 28 <= saving <= 34

    def test_omission_gives_lowest_best_case(self, bounds):
        assert bounds["SDLOT"].bcet_cycles < bounds["SPLIT"].bcet_cycles


class TestBoundsVsMeasurement:
    @pytest.mark.parametrize("name",
                             ("vanilla", "SL", "T", "SLT", "SDLOT", "SPLIT"))
    def test_wcet_dominates_measurement(self, name, bounds, measured):
        """WCET is a sound upper bound. (BCET is a best-*path* bound
        under worst-case per-instruction latencies — an upper bound on
        the cheapest path, not a floor on observations — so only the
        worst case is checked against measurement.)"""
        assert measured[name].maximum <= \
            bounds[name].wcet_cycles + _RESPONSE_SLACK, name

    @pytest.mark.parametrize("name", ("T", "SLT", "SPLIT"))
    def test_measured_jitter_within_bound(self, name, bounds, measured):
        """For hardware-scheduled configs the path bound plus response
        slack covers everything the simulation produces."""
        assert measured[name].jitter <= \
            bounds[name].jitter_bound + _RESPONSE_SLACK, name
