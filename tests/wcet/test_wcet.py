"""Static WCET analysis (paper §6.2)."""

import pytest

from repro.harness import run_suite
from repro.rtosunit.config import parse_config
from repro.wcet import analyze_config


@pytest.fixture(scope="module")
def wcet():
    configs = ("vanilla", "CV32RT", "S", "SL", "T", "ST", "SLT", "SDLOT",
               "SPLIT")
    return {name: analyze_config(parse_config(name)) for name in configs}


class TestOrdering:
    def test_paper_ordering(self, wcet):
        """§6.2: vanilla > SL ≫ T > SLT (paper: 1649 > 1442 ≫ 202 > 70)."""
        assert wcet["vanilla"].wcet_cycles > wcet["SL"].wcet_cycles
        assert wcet["SL"].wcet_cycles > 3 * wcet["T"].wcet_cycles
        assert wcet["T"].wcet_cycles > wcet["SLT"].wcet_cycles

    def test_sl_close_to_vanilla(self, wcet):
        """Offloading only context handling barely moves the WCET: the
        worst case is dominated by the software tick/scheduler path."""
        ratio = wcet["SL"].wcet_cycles / wcet["vanilla"].wcet_cycles
        assert 0.75 <= ratio <= 0.98

    def test_t_is_an_order_of_magnitude_better(self, wcet):
        ratio = wcet["T"].wcet_cycles / wcet["vanilla"].wcet_cycles
        assert ratio < 0.3

    def test_slt_within_context_transfer_bound(self, wcet):
        """(SLT)'s WCET is bounded by store+restore over the port plus
        fixed entry/exit costs — well under 120 cycles."""
        assert wcet["SLT"].wcet_cycles < 120

    def test_cv32rt_close_to_vanilla(self, wcet):
        assert wcet["CV32RT"].wcet_cycles < wcet["vanilla"].wcet_cycles
        assert wcet["CV32RT"].wcet_cycles > 0.9 * wcet["vanilla"].wcet_cycles


class TestSoundness:
    @pytest.mark.parametrize("config", ("vanilla", "S", "SL", "T", "ST",
                                        "SLT", "SPLIT"))
    def test_wcet_bounds_measured_isr_latency(self, config, wcet):
        """The static bound covers the ISR path (take → mret), which is
        what §6.2 analyses. The additional trigger-to-take wait (an
        instruction in flight, a masked window) is additive response
        time, not ISR WCET."""
        suite = run_suite("cv32e40p", parse_config(config), iterations=5)
        entry_cost = 4  # CV32E40P trap_entry_cycles, included in the bound
        worst_isr = max(s.mret_cycle - s.entry_cycle + entry_cost
                        for run in suite.runs
                        for s in run.switches)
        assert worst_isr <= wcet[config].wcet_cycles

    def test_slt_wcet_close_to_measurement(self, wcet):
        """§6.2: for (SLT) the WCET matches the measured latency."""
        suite = run_suite("cv32e40p", parse_config("SLT"), iterations=5)
        assert wcet["SLT"].wcet_cycles - suite.stats.maximum <= 10


class TestScaling:
    def test_wcet_grows_with_delayed_tasks(self):
        """More delayed tasks → longer worst-case tick path (software
        scheduling only; hardware ticks are off the critical path)."""
        small = analyze_config(parse_config("vanilla"), delayed_tasks=2)
        large = analyze_config(parse_config("vanilla"), delayed_tasks=8)
        assert large.wcet_cycles > small.wcet_cycles + 100

    def test_hw_sched_wcet_independent_of_delayed_tasks(self):
        small = analyze_config(parse_config("SLT"), delayed_tasks=2)
        large = analyze_config(parse_config("SLT"), delayed_tasks=8)
        assert small.wcet_cycles == large.wcet_cycles


class TestAnalyzerMechanics:
    def test_paths_explored_reported(self, wcet):
        assert wcet["vanilla"].paths_explored > 10
        assert wcet["SLT"].paths_explored >= 1

    def test_instructions_on_path(self, wcet):
        assert wcet["vanilla"].instructions_on_path > \
            wcet["SLT"].instructions_on_path
