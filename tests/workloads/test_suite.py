"""The workload suite itself: construction and semantic checks."""

import pytest

from repro.errors import KernelError
from repro.harness import run_workload
from repro.rtosunit.config import parse_config
from repro.workloads import (
    ALL_WORKLOADS,
    LADDER_WORKLOADS,
    mixed_stress,
    RTOSBENCH_WORKLOADS,
    delay_periodic,
    interrupt_response,
    ladder_irq,
    ladder_jitter,
    ladder_switch,
    mutex_workload,
    queue_passing,
    sem_signal,
    workload_by_name,
    yield_pingpong,
)


class TestConstruction:
    def test_suite_composition(self):
        assert len(RTOSBENCH_WORKLOADS) == 5
        assert len(LADDER_WORKLOADS) == 3
        # + interrupt_response, mixed_stress + the ladder probes
        assert len(ALL_WORKLOADS) == 10

    @pytest.mark.parametrize("factory", ALL_WORKLOADS)
    def test_factories_build(self, factory):
        workload = factory(5)
        assert workload.name
        assert workload.objects.tasks

    def test_lookup_by_name(self):
        assert workload_by_name("mutex_workload").name == "mutex_workload"
        with pytest.raises(KernelError):
            workload_by_name("nope")

    def test_delay_periodic_bounds(self):
        with pytest.raises(KernelError):
            delay_periodic(periodic_tasks=7)

    def test_interrupt_response_has_events(self):
        workload = interrupt_response(5)
        assert len(workload.external_events) == 10
        assert workload.objects.ext_handler


class TestSemantics:
    def test_yield_pingpong_switch_count(self):
        workload = yield_pingpong(iterations=5)
        result = run_workload("cv32e40p", parse_config("vanilla"), workload)
        # 20 yields from a, matched by b: at least 40 switches minus warmup.
        assert result.stats.count >= 35

    def test_sem_signal_two_switches_per_round(self):
        workload = sem_signal(iterations=5)
        result = run_workload("cv32e40p", parse_config("vanilla"), workload)
        assert result.stats.count >= 15

    def test_mutex_workload_runs_on_all_configs(self):
        for config in ("vanilla", "SLT", "SPLIT"):
            workload = mutex_workload(iterations=3)
            result = run_workload("cv32e40p", parse_config(config), workload)
            assert result.stats.count > 5

    def test_queue_passing_completes(self):
        result = run_workload("cv32e40p", parse_config("T"),
                              queue_passing(iterations=4))
        assert result.stats.count > 5

    def test_delay_periodic_is_tick_driven(self):
        workload = delay_periodic(iterations=5)
        result = run_workload("cv32e40p", parse_config("vanilla"), workload)
        assert result.stats.count >= 10
        # The tick path is longer than a plain yield: jitter present.
        assert result.stats.jitter > 0

    def test_interrupt_response_measures_external_path(self):
        workload = interrupt_response(iterations=4)
        result = run_workload("cv32e40p", parse_config("vanilla"), workload)
        assert result.stats.count >= 6

    def test_interrupt_response_improves_with_slt(self):
        vanilla = run_workload("cv32e40p", parse_config("vanilla"),
                               interrupt_response(iterations=4))
        slt = run_workload("cv32e40p", parse_config("SLT"),
                           interrupt_response(iterations=4))
        assert slt.stats.mean < vanilla.stats.mean


class TestMixedStress:
    @pytest.mark.parametrize("config", ("vanilla", "SLT", "SPLIT", "SLTY"))
    def test_runs_on_every_config(self, config):
        result = run_workload("cv32e40p", parse_config(config),
                              mixed_stress(6))
        assert result.stats.count > 50

    def test_fills_hardware_lists_to_capacity(self):
        result = run_workload("cv32e40p", parse_config("SLT"),
                              mixed_stress(6))
        # 7 tasks + idle = the full 8-entry hardware ready list at boot.
        assert result.unit_stats.sched_ops > 100

    def test_exercises_all_services(self):
        result = run_workload("cv32e40p", parse_config("vanilla"),
                              mixed_stress(6))
        assert result.core_stats.traps > 100


class TestLadderProbes:
    """The personality-portable latency-ladder probe workloads."""

    def test_lookup_by_name(self):
        for name in ("ladder_switch", "ladder_irq", "ladder_jitter"):
            assert workload_by_name(name, iterations=4).name == name

    @pytest.mark.parametrize("personality", ("freertos", "scm", "echronos"))
    @pytest.mark.parametrize("factory", LADDER_WORKLOADS)
    def test_runs_under_every_personality(self, factory, personality):
        config_name = ("vanilla" if personality == "freertos"
                       else f"vanilla@{personality}")
        result = run_workload("cv32e40p", parse_config(config_name),
                              factory(4))
        assert result.stats.count >= 8

    def test_ladder_switch_unique_priorities(self):
        # One task per priority level: representable under scm too.
        prios = [t.priority for t in ladder_switch(4).objects.tasks]
        assert len(prios) == len(set(prios))

    def test_ladder_irq_has_events(self):
        workload = ladder_irq(4)
        assert len(workload.external_events) == 8
        assert workload.objects.ext_handler

    def test_ladder_jitter_is_tick_driven(self):
        result = run_workload("cv32e40p", parse_config("vanilla"),
                              ladder_jitter(4))
        assert result.stats.jitter > 0


class TestIterationScaling:
    def test_more_iterations_more_samples(self):
        small = run_workload("cv32e40p", parse_config("vanilla"),
                             yield_pingpong(3))
        large = run_workload("cv32e40p", parse_config("vanilla"),
                             yield_pingpong(10))
        assert large.stats.count > small.stats.count
