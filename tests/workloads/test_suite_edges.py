"""Fixed-suite edge cases: extreme knob values on every core.

The fuzz subsystem (repro.fuzz) explores the same parameter axes
randomly; these tests pin the deterministic corners of the fixed suite
so a regression there is caught directly rather than by a fuzz
campaign: single-iteration periodic delays, interrupt storms at tight
and very wide spacings, and a capacity-1 queue that forces a full/empty
block on every message.
"""

import pytest

from repro.cores import CORE_NAMES
from repro.harness import run_workload
from repro.rtosunit.config import parse_config
from repro.workloads import delay_periodic, interrupt_response, queue_passing

VANILLA = parse_config("vanilla")


@pytest.mark.parametrize("core", CORE_NAMES)
class TestSuiteEdges:
    def test_delay_periodic_single_iteration(self, core):
        """One round of periodic wakeups still completes and measures."""
        workload = delay_periodic(iterations=1)
        result = run_workload(core, VANILLA, workload)
        assert result.stats.count > 0
        assert result.switches
        assert all(s.latency > 0 for s in result.switches)

    def test_interrupt_response_tight_spacing(self, core):
        """Back-to-back external interrupts: CLINT defers, never drops."""
        workload = interrupt_response(iterations=3, spacing=300)
        result = run_workload(core, VANILLA, workload)
        assert result.stats.count > 0
        assert result.switches

    def test_interrupt_response_wide_spacing(self, core):
        """Widely spaced interrupts from a long-idle system."""
        workload = interrupt_response(iterations=2, spacing=120_000)
        result = run_workload(core, VANILLA, workload)
        assert result.stats.count > 0
        assert result.switches

    def test_queue_passing_capacity_one(self, core):
        """Capacity-1 queue: every send/recv pair blocks and hands off."""
        workload = queue_passing(iterations=3, capacity=1)
        result = run_workload(core, VANILLA, workload)
        assert result.stats.count > 0
        assert result.switches
        assert all(s.latency > 0 for s in result.switches)
